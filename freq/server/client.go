package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"iter"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/freq"
)

// Client speaks the line protocol to a Server. It is generic over the
// item type: the wire carries decimal int64, and any 8-byte integer kind
// (~int64 | ~uint64 — the freq fast path's domain) converts to and from
// it losslessly, so a collector keyed by uint64 flow hashes and one
// keyed by signed ids share one client. It is a thin synchronous
// wrapper suitable for collectors and tests; it is not safe for
// concurrent use (open one per goroutine — the server side is
// concurrent).
//
// Client implements freq.Queryable[T], so the freq.Query builder runs
// against a remote summary exactly as against a local sketch. The
// interface-shaped methods (Estimate, bounds, MaximumError,
// StreamWeight, All) cannot return transport errors in-band; the first
// failure is recorded and exposed via Err, and subsequent calls return
// zero values. Callers that need per-call errors use the explicit
// methods (Query, TopK, FrequentItemsAboveThreshold, Stats, ...).
type Client[T ~int64 | ~uint64] struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	err  error
	// bin is set by a successful Negotiate: requests travel as opCmd and
	// opPairs frames and replies arrive as opReply frames whose payload
	// is byte-for-byte the text protocol's reply.
	bin bool
	// frame is the unconsumed tail of the current reply frame's payload;
	// readLine and readBlob drain it before fetching the next frame.
	frame []byte
	// cmdBuf is the reusable request encoding buffer (command lines and
	// pairs payloads alike).
	cmdBuf []byte
}

// ClientOption configures Dial.
type ClientOption func(*clientConfig)

type clientConfig struct{ binary bool }

// WithBinary makes Dial negotiate the binary framing after connecting.
// Negotiation is best-effort: a server that answers HELLO with ERR (an
// older build, or a newer framing version) leaves the client in text
// mode and Dial still succeeds — Binary reports which framing won.
func WithBinary() ClientOption {
	return func(c *clientConfig) { c.binary = true }
}

// Queryable compile-time proof, mirroring the assertions in freq.
var _ freq.Queryable[int64] = (*Client[int64])(nil)

// Dial connects to a server at addr.
func Dial[T ~int64 | ~uint64](addr string, opts ...ClientOption) (*Client[T], error) {
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient[T](conn)
	if cfg.binary {
		if _, err := c.Negotiate(); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return c, nil
}

// NewClient wraps an existing connection (e.g. net.Pipe in tests). The
// client starts in text framing; call Negotiate to attempt the binary
// upgrade.
func NewClient[T ~int64 | ~uint64](conn net.Conn) *Client[T] {
	return &Client[T]{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}
}

// Negotiate sends HELLO BIN and upgrades the connection to the binary
// framing if the server agrees. It returns (true, nil) on upgrade and
// (false, nil) when the server declines with a text ERR — an older
// server that has never heard of HELLO answers exactly that way and the
// line stream stays synchronized, so the client simply keeps talking
// text. Only transport failures return an error. Negotiate is a no-op
// on an already-binary connection.
func (c *Client[T]) Negotiate() (bool, error) {
	if c.bin {
		return true, nil
	}
	if _, err := fmt.Fprintf(c.w, "HELLO BIN %d\n", binaryVersion); err != nil {
		return false, err
	}
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return false, err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return false, nil
	}
	if line != fmt.Sprintf("HELLO BIN %d", binaryVersion) {
		return false, fmt.Errorf("server: unexpected HELLO response %q", line)
	}
	c.bin = true
	return true, nil
}

// Binary reports whether the connection negotiated the binary framing.
func (c *Client[T]) Binary() bool { return c.bin }

// writeFrame ships one framed request and flushes it.
func (c *Client[T]) writeFrame(op byte, payload []byte) error {
	var hdr [frameHeader]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// readFrame fetches the next reply frame's payload into c.frame.
func (c *Client[T]) readFrame() error {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return err
	}
	if hdr[0] != opReply {
		return fmt.Errorf("client: unexpected frame opcode 0x%02x", hdr[0])
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrameBytes {
		return fmt.Errorf("client: reply frame length %d exceeds cap %d", n, MaxFrameBytes)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return err
	}
	c.frame = buf
	return nil
}

// readLine returns the next reply line including its trailing newline —
// straight off the stream in text framing, sliced out of the current
// reply frame in binary framing.
func (c *Client[T]) readLine() (string, error) {
	if !c.bin {
		return c.r.ReadString('\n')
	}
	if len(c.frame) == 0 {
		if err := c.readFrame(); err != nil {
			return "", err
		}
	}
	if i := bytes.IndexByte(c.frame, '\n'); i >= 0 {
		line := string(c.frame[:i+1])
		c.frame = c.frame[i+1:]
		return line, nil
	}
	line := string(c.frame)
	c.frame = nil
	return line, nil
}

// readBlobInto fills blob with reply payload bytes — the body of a SNAP
// response, which in binary framing rides in the same frame as its
// header line.
func (c *Client[T]) readBlobInto(blob []byte) error {
	if !c.bin {
		_, err := io.ReadFull(c.r, blob)
		return err
	}
	for len(blob) > 0 {
		if len(c.frame) == 0 {
			if err := c.readFrame(); err != nil {
				return err
			}
		}
		n := copy(blob, c.frame)
		c.frame = c.frame[n:]
		blob = blob[n:]
	}
	return nil
}

// Close sends QUIT, waits for the server's BYE — which the server only
// sends after flushing this connection's buffered updates into the
// shared summary — and closes the connection.
func (c *Client[T]) Close() error {
	if c.bin {
		_ = c.writeFrame(opCmd, []byte("QUIT"))
		_, _ = c.readLine()
	} else {
		fmt.Fprintln(c.w, "QUIT")
		c.w.Flush()
		_, _ = c.r.ReadString('\n')
	}
	return c.conn.Close()
}

func (c *Client[T]) roundTrip(format string, args ...any) (string, error) {
	if c.bin {
		c.cmdBuf = fmt.Appendf(c.cmdBuf[:0], format, args...)
		if err := c.writeFrame(opCmd, c.cmdBuf); err != nil {
			return "", err
		}
	} else {
		if _, err := fmt.Fprintf(c.w, format+"\n", args...); err != nil {
			return "", err
		}
		if err := c.w.Flush(); err != nil {
			return "", err
		}
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("server: %s", line[4:])
	}
	return line, nil
}

// Update sends a weighted update.
func (c *Client[T]) Update(item T, weight int64) error {
	resp, err := c.roundTrip("U %d %d", int64(item), weight)
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("server: unexpected response %q", resp)
	}
	return nil
}

// UpdateBatch sends a batch of weighted updates as UB blocks — one
// buffered write and one round trip per block instead of per update —
// and waits for the server's acknowledgement. Batches longer than the
// server's MaxWireBatch cap are chunked transparently. Each block is
// all-or-nothing on the server: mismatched lengths here or a negative
// weight there reject it with no updates from that block applied.
func (c *Client[T]) UpdateBatch(items []T, weights []int64) error {
	if len(items) != len(weights) {
		return fmt.Errorf("client: batch length mismatch: %d items, %d weights", len(items), len(weights))
	}
	for lo := 0; lo < len(items); lo += MaxWireBatch {
		hi := min(lo+MaxWireBatch, len(items))
		if err := c.updateBlock(items[lo:hi], weights[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// updateBlock ships one block of at most MaxWireBatch pairs — a UB
// block in text framing, one opPairs frame in binary framing.
func (c *Client[T]) updateBlock(items []T, weights []int64) error {
	if len(items) == 0 {
		return nil
	}
	if c.bin {
		return c.updateBlockBinary(items, weights)
	}
	if _, err := fmt.Fprintf(c.w, "UB %d\n", len(items)); err != nil {
		return err
	}
	buf := make([]byte, 0, 48)
	for i := range items {
		buf = strconv.AppendInt(buf[:0], int64(items[i]), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, weights[i], 10)
		buf = append(buf, '\n')
		if _, err := c.w.Write(buf); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return fmt.Errorf("server: %s", line[4:])
	}
	var n int
	if _, err := fmt.Sscanf(line, "OK %d", &n); err != nil || n != len(items) {
		return fmt.Errorf("server: unexpected batch response %q", line)
	}
	return nil
}

// updateBlockBinary encodes one pairs frame — pairSize bytes per
// update, little-endian item then weight — and waits for the same
// "OK <n>" the text block gets. The encoding buffer is reused, so a
// steady stream of equal-size blocks allocates nothing.
func (c *Client[T]) updateBlockBinary(items []T, weights []int64) error {
	need := len(items) * pairSize
	if cap(c.cmdBuf) < need {
		c.cmdBuf = make([]byte, need)
	}
	buf := c.cmdBuf[:need]
	for i := range items {
		binary.LittleEndian.PutUint64(buf[i*pairSize:], uint64(int64(items[i])))
		binary.LittleEndian.PutUint64(buf[i*pairSize+8:], uint64(weights[i]))
	}
	if err := c.writeFrame(opPairs, buf); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return fmt.Errorf("server: %s", line[4:])
	}
	var n int
	if _, err := fmt.Sscanf(line, "OK %d", &n); err != nil || n != len(items) {
		return fmt.Errorf("server: unexpected batch response %q", line)
	}
	return nil
}

// Query returns (estimate, lowerBound, upperBound) for item in one
// round trip.
func (c *Client[T]) Query(item T) (est, lb, ub int64, err error) {
	resp, err := c.roundTrip("EST %d", int64(item))
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "EST %d %d %d", &est, &lb, &ub); err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad response %q", resp)
	}
	return est, lb, ub, nil
}

// readMulti parses a MULTI block into rows.
func (c *Client[T]) readMulti(header string) ([]freq.Row[T], error) {
	var n int
	if _, err := fmt.Sscanf(header, "MULTI %d", &n); err != nil {
		return nil, fmt.Errorf("server: bad multi header %q", header)
	}
	rows := make([]freq.Row[T], 0, n)
	for i := 0; i < n; i++ {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		var item int64
		var r freq.Row[T]
		if _, err := fmt.Sscanf(strings.TrimSpace(line), "ITEM %d %d %d %d",
			&item, &r.Estimate, &r.LowerBound, &r.UpperBound); err != nil {
			return nil, fmt.Errorf("server: bad row %q", line)
		}
		r.Item = T(item)
		rows = append(rows, r)
	}
	return rows, nil
}

// TopK returns the n largest items (server-side TOPK command, answered
// from the server's epoch-cached merged view).
func (c *Client[T]) TopK(n int) ([]freq.Row[T], error) {
	resp, err := c.roundTrip("TOPK %d", n)
	if err != nil {
		return nil, err
	}
	return c.readMulti(resp)
}

// Top returns the n largest items. Deprecated name kept for existing
// callers; identical to TopK.
func (c *Client[T]) Top(n int) ([]freq.Row[T], error) { return c.TopK(n) }

// FrequentItemsAboveThreshold returns items qualifying against an
// absolute threshold under et (server-side FI command).
func (c *Client[T]) FrequentItemsAboveThreshold(threshold int64, et freq.ErrorType) ([]freq.Row[T], error) {
	resp, err := c.roundTrip("FI %d %d", int(et), threshold)
	if err != nil {
		return nil, err
	}
	return c.readMulti(resp)
}

// HeavyHitters returns items above phi (in [0,1]) of the stream weight.
func (c *Client[T]) HeavyHitters(phi float64) ([]freq.Row[T], error) {
	resp, err := c.roundTrip("HH %d", int(phi*1000))
	if err != nil {
		return nil, err
	}
	return c.readMulti(resp)
}

// Stats returns the server-side stream weight and error band.
func (c *Client[T]) Stats() (n, maxErr int64, err error) {
	resp, err := c.roundTrip("STATS")
	if err != nil {
		return 0, 0, err
	}
	var shards int
	if _, err := fmt.Sscanf(resp, "STATS n=%d err=%d shards=%d", &n, &maxErr, &shards); err != nil {
		return 0, 0, fmt.Errorf("server: bad stats %q", resp)
	}
	return n, maxErr, nil
}

// Snapshot fetches the serialized summary and decodes it into a sketch —
// the §3 geographically-distributed pattern over the wire, and the unit
// the Cluster fan-out merges.
func (c *Client[T]) Snapshot() (*freq.Sketch[T], error) {
	resp, err := c.roundTrip("SNAP")
	if err != nil {
		return nil, err
	}
	return c.readSnapshot(resp)
}

// readSnapshot consumes a "SNAP <bytes>" header's blob and decodes it.
func (c *Client[T]) readSnapshot(header string) (*freq.Sketch[T], error) {
	var n int
	if _, err := fmt.Sscanf(header, "SNAP %d", &n); err != nil {
		return nil, fmt.Errorf("server: bad snapshot header %q", header)
	}
	blob := make([]byte, n)
	if err := c.readBlobInto(blob); err != nil {
		return nil, err
	}
	sk, err := freq.New[T](64)
	if err != nil {
		return nil, err
	}
	if err := sk.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return sk, nil
}

// Window-scoped pass-throughs: each maps onto the WIN command, scoping
// the query to the merged view of the server's last w window intervals.
// They error when the server runs without a window.

// QueryWindow returns (estimate, lowerBound, upperBound) for item over
// the last w intervals of the server's sliding window.
func (c *Client[T]) QueryWindow(w int, item T) (est, lb, ub int64, err error) {
	resp, err := c.roundTrip("WIN %d EST %d", w, int64(item))
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "EST %d %d %d", &est, &lb, &ub); err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad response %q", resp)
	}
	return est, lb, ub, nil
}

// TopKWindow returns the n largest items over the last w intervals.
func (c *Client[T]) TopKWindow(w, n int) ([]freq.Row[T], error) {
	resp, err := c.roundTrip("WIN %d TOPK %d", w, n)
	if err != nil {
		return nil, err
	}
	return c.readMulti(resp)
}

// FrequentItemsAboveThresholdWindow returns items qualifying against an
// absolute threshold under et over the last w intervals.
func (c *Client[T]) FrequentItemsAboveThresholdWindow(w int, threshold int64, et freq.ErrorType) ([]freq.Row[T], error) {
	resp, err := c.roundTrip("WIN %d FI %d %d", w, int(et), threshold)
	if err != nil {
		return nil, err
	}
	return c.readMulti(resp)
}

// SnapshotWindow fetches the serialized merged view of the last w
// intervals and decodes it into an ordinary sketch — the blob is the
// standard single-sketch wire format, so the result merges and queries
// like any other snapshot (Cluster.RefreshWindow fans this out).
func (c *Client[T]) SnapshotWindow(w int) (*freq.Sketch[T], error) {
	resp, err := c.roundTrip("WIN %d SNAP", w)
	if err != nil {
		return nil, err
	}
	return c.readSnapshot(resp)
}

// Range-scoped pass-throughs: each maps onto the RANGE command, scoping
// the query to the merged summary of every window slot the server's
// durable store persisted over [from, to). Bounds travel as unix
// seconds. They error when the server runs without a store.

// QueryRange returns (estimate, lowerBound, upperBound) for item over
// the stored history covering [from, to).
func (c *Client[T]) QueryRange(from, to time.Time, item T) (est, lb, ub int64, err error) {
	resp, err := c.roundTrip("RANGE %d %d EST %d", from.Unix(), to.Unix(), int64(item))
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "EST %d %d %d", &est, &lb, &ub); err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad response %q", resp)
	}
	return est, lb, ub, nil
}

// TopKRange returns the n largest items over the stored history
// covering [from, to).
func (c *Client[T]) TopKRange(from, to time.Time, n int) ([]freq.Row[T], error) {
	resp, err := c.roundTrip("RANGE %d %d TOPK %d", from.Unix(), to.Unix(), n)
	if err != nil {
		return nil, err
	}
	return c.readMulti(resp)
}

// FrequentItemsAboveThresholdRange returns items qualifying against an
// absolute threshold under et over the stored history covering
// [from, to).
func (c *Client[T]) FrequentItemsAboveThresholdRange(from, to time.Time, threshold int64, et freq.ErrorType) ([]freq.Row[T], error) {
	resp, err := c.roundTrip("RANGE %d %d FI %d %d", from.Unix(), to.Unix(), int(et), threshold)
	if err != nil {
		return nil, err
	}
	return c.readMulti(resp)
}

// SnapshotRange fetches the serialized merged summary of the stored
// history covering [from, to) — the standard single-sketch wire format,
// decoded like any other snapshot.
func (c *Client[T]) SnapshotRange(from, to time.Time) (*freq.Sketch[T], error) {
	resp, err := c.roundTrip("RANGE %d %d SNAP", from.Unix(), to.Unix())
	if err != nil {
		return nil, err
	}
	return c.readSnapshot(resp)
}

// Rotate advances the server's sliding window one interval and returns
// the server's total rotation count.
func (c *Client[T]) Rotate() (rotations int64, err error) {
	resp, err := c.roundTrip("ROTATE")
	if err != nil {
		return 0, err
	}
	if _, err := fmt.Sscanf(resp, "OK %d", &rotations); err != nil {
		return 0, fmt.Errorf("server: unexpected response %q", resp)
	}
	return rotations, nil
}

// Reset clears the server-side summary.
func (c *Client[T]) Reset() error {
	resp, err := c.roundTrip("RESET")
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("server: unexpected response %q", resp)
	}
	return nil
}

// Raw sends a raw protocol line and returns the first response line
// (diagnostics and protocol tests).
func (c *Client[T]) Raw(line string) (string, error) {
	return c.roundTrip("%s", line)
}

// Err returns the first transport or protocol error encountered by the
// freq.Queryable-shaped methods, or nil. It does not reset.
func (c *Client[T]) Err() error { return c.err }

// fail records the first Queryable-path error.
func (c *Client[T]) fail(err error) {
	if c.err == nil && err != nil {
		c.err = err
	}
}

// Estimate returns the remote point estimate for item (one EST round
// trip); 0 and a sticky Err on transport failure.
func (c *Client[T]) Estimate(item T) int64 {
	est, _, _, err := c.Query(item)
	c.fail(err)
	return est
}

// LowerBound returns the remote lower bound for item.
func (c *Client[T]) LowerBound(item T) int64 {
	_, lb, _, err := c.Query(item)
	c.fail(err)
	return lb
}

// UpperBound returns the remote upper bound for item.
func (c *Client[T]) UpperBound(item T) int64 {
	_, _, ub, err := c.Query(item)
	c.fail(err)
	return ub
}

// MaximumError returns the remote summary's error band (via STATS).
func (c *Client[T]) MaximumError() int64 {
	_, maxErr, err := c.Stats()
	c.fail(err)
	return maxErr
}

// StreamWeight returns the remote stream weight (via STATS).
func (c *Client[T]) StreamWeight() int64 {
	n, _, err := c.Stats()
	c.fail(err)
	return n
}

// All fetches every tracked row (FI with threshold 0, no false
// negatives) and iterates the result — the remote leg of the
// freq.Queryable contract. The fetch happens when iteration starts; a
// transport failure yields nothing and sets Err.
func (c *Client[T]) All() iter.Seq2[T, freq.Row[T]] {
	return func(yield func(T, freq.Row[T]) bool) {
		rows, err := c.FrequentItemsAboveThreshold(0, freq.NoFalseNegatives)
		if err != nil {
			c.fail(err)
			return
		}
		for _, r := range rows {
			if !yield(r.Item, r) {
				return
			}
		}
	}
}
