package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"iter"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/freq"
)

// Client speaks the line protocol to a Server. It is generic over the
// item type: the wire carries decimal int64, and any 8-byte integer kind
// (~int64 | ~uint64 — the freq fast path's domain) converts to and from
// it losslessly, so a collector keyed by uint64 flow hashes and one
// keyed by signed ids share one client. It is a thin synchronous
// wrapper suitable for collectors and tests; it is not safe for
// concurrent use (open one per goroutine — the server side is
// concurrent).
//
// Client implements freq.Queryable[T], so the freq.Query builder runs
// against a remote summary exactly as against a local sketch. The
// interface-shaped methods (Estimate, bounds, MaximumError,
// StreamWeight, All) cannot return transport errors in-band; the first
// failure is recorded and exposed via Err, and subsequent calls return
// zero values. Callers that need per-call errors use the explicit
// methods (Query, TopK, FrequentItemsAboveThreshold, Stats, ...).
//
// # Fault tolerance
//
// A dialed client survives a flaky network when configured to:
// WithDialTimeout and WithIOTimeout bound every connect, read, and
// write with deadlines; WithRetry makes the idempotent read commands
// (EST, TOPK, FI, HH, STATS, SNAP, and their WIN/RANGE-scoped forms)
// retry transport failures with jittered exponential backoff,
// transparently re-dialing and re-negotiating the binary framing. The
// non-idempotent ingest commands (Update, UpdateBatch) are NEVER
// auto-retried — a lost acknowledgement is indistinguishable from a
// lost request, so re-sending could double count; they return a
// *TransportError and let the caller decide. After any transport
// failure the connection is marked broken and the next operation
// re-dials first (when the client knows its address), so a recovered
// server is picked back up without new client state.
type Client[T ~int64 | ~uint64] struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	err  error
	// bin is set by a successful Negotiate: requests travel as opCmd and
	// opPairs frames and replies arrive as opReply frames whose payload
	// is byte-for-byte the text protocol's reply. binVer is the
	// negotiated version (2 adds the tenant-id prefix to pairs frames).
	bin    bool
	binVer int
	// wantBin records that the caller asked for binary framing, so a
	// reconnect re-negotiates it.
	wantBin bool
	// frame is the unconsumed tail of the current reply frame's payload;
	// readLine and readBlob drain it before fetching the next frame.
	frame []byte
	// cmdBuf is the reusable request encoding buffer (command lines and
	// pairs payloads alike).
	cmdBuf []byte

	// addr is the dial target ("" for NewClient over an existing conn —
	// such a client cannot reconnect).
	addr string
	// redial opens a replacement connection; defaults to a TCP dial of
	// addr bounded by dialTimeout. Overridable for tests (fault
	// injection wraps the raw conn here).
	redial func() (net.Conn, error)
	// dialTimeout bounds the initial and every replacement dial.
	dialTimeout time.Duration
	// ioTimeout, when positive, arms a read or write deadline around
	// every conn operation, so no round trip can block forever on a
	// stalled peer.
	ioTimeout time.Duration
	// retries and backoff configure WithRetry: up to retries additional
	// attempts after the first failure, sleeping a jittered exponential
	// backoff between them.
	retries int
	backoff time.Duration
	// broken marks the connection poisoned by a transport failure (the
	// reply stream may be desynchronized); the next operation must
	// reconnect before using it.
	broken bool
	// aborted is set by an external deadline owner (Cluster's per-node
	// timeout): while set, deadline arming is suppressed so the abort
	// deadline cannot be extended by the operation in flight.
	aborted atomic.Bool
	// retryCount counts retry round trips performed (diagnostics; the
	// fault-injection suite asserts on it).
	retryCount int64
	// lastSnapBytes is the wire size of the most recent snapshot blob
	// (diagnostics; the Cluster manifest reports it).
	lastSnapBytes int
}

// ClientOption configures Dial.
type ClientOption func(*clientConfig)

type clientConfig struct {
	binary      bool
	dialTimeout time.Duration
	ioTimeout   time.Duration
	retries     int
	backoff     time.Duration
	dialer      func() (net.Conn, error)
}

// WithBinary makes Dial negotiate the binary framing after connecting.
// Negotiation is best-effort: a server that answers HELLO with ERR (an
// older build, or a newer framing version) leaves the client in text
// mode and Dial still succeeds — Binary reports which framing won.
func WithBinary() ClientOption {
	return func(c *clientConfig) { c.binary = true }
}

// WithDialTimeout bounds the initial connect and every reconnect; zero
// (the default) dials without a bound.
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.dialTimeout = d }
}

// WithIOTimeout arms a deadline around every read and write on the
// connection — text and binary framing alike — so a stalled peer fails
// the operation with a timeout instead of pinning the caller forever.
// Zero (the default) leaves operations unbounded.
func WithIOTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.ioTimeout = d }
}

// WithRetry makes idempotent read commands retry transport failures up
// to n additional times, sleeping a jittered exponential backoff
// starting at base between attempts (base doubles per attempt, capped
// at 64x, jittered ±50%). Each retry re-dials the server and
// re-negotiates the framing. Non-idempotent ingest never retries
// regardless of this option.
func WithRetry(n int, base time.Duration) ClientOption {
	return func(c *clientConfig) { c.retries, c.backoff = n, base }
}

// WithDialer replaces the TCP dialer used for the initial connection
// and every reconnect — the hook the fault-injection suite uses to wrap
// connections in chaos. The addr argument of Dial is then only a label.
func WithDialer(dial func() (net.Conn, error)) ClientOption {
	return func(c *clientConfig) { c.dialer = dial }
}

// Queryable compile-time proof, mirroring the assertions in freq.
var _ freq.Queryable[int64] = (*Client[int64])(nil)

// Dial connects to a server at addr.
func Dial[T ~int64 | ~uint64](addr string, opts ...ClientOption) (*Client[T], error) {
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	dial := cfg.dialer
	if dial == nil {
		dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, cfg.dialTimeout)
		}
	}
	conn, err := dial()
	if err != nil {
		return nil, &TransportError{Op: "DIAL", Attempts: 1, Err: err}
	}
	c := NewClient[T](conn)
	c.addr = addr
	c.redial = dial
	c.dialTimeout = cfg.dialTimeout
	c.ioTimeout = cfg.ioTimeout
	c.retries = cfg.retries
	c.backoff = cfg.backoff
	if cfg.binary {
		c.wantBin = true
		if _, err := c.Negotiate(); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return c, nil
}

// NewClient wraps an existing connection (e.g. net.Pipe in tests). The
// client starts in text framing; call Negotiate to attempt the binary
// upgrade.
func NewClient[T ~int64 | ~uint64](conn net.Conn) *Client[T] {
	return &Client[T]{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}
}

// armRead arms the read deadline for one conn operation when an IO
// timeout is configured. Suppressed while an external abort deadline is
// in force (see abort).
func (c *Client[T]) armRead() {
	if c.ioTimeout > 0 && !c.aborted.Load() {
		c.conn.SetReadDeadline(time.Now().Add(c.ioTimeout))
	}
}

// armWrite arms the write deadline for one conn operation.
func (c *Client[T]) armWrite() {
	if c.ioTimeout > 0 && !c.aborted.Load() {
		c.conn.SetWriteDeadline(time.Now().Add(c.ioTimeout))
	}
}

// abort expires the connection immediately and keeps it expired: every
// blocked or future conn operation fails with a timeout until
// clearAbort. Safe to call from another goroutine (the Cluster's
// per-node refresh timeout is an AfterFunc); conn deadlines are
// documented as concurrency-safe.
func (c *Client[T]) abort() {
	c.aborted.Store(true)
	c.conn.SetDeadline(time.Now())
}

// clearAbort lifts an abort. The connection stays marked broken by the
// failed operation itself, so the next use reconnects rather than
// trusting a desynchronized stream.
func (c *Client[T]) clearAbort() {
	if c.aborted.Swap(false) {
		c.conn.SetDeadline(time.Time{})
	}
}

// Retries returns how many retry round trips this client has performed
// (diagnostics; reconnects that precede a first attempt don't count).
func (c *Client[T]) Retries() int64 { return c.retryCount }

// Addr returns the dial target, or the remote address for a client
// wrapped around an existing connection.
func (c *Client[T]) Addr() string {
	if c.addr != "" {
		return c.addr
	}
	if ra := c.conn.RemoteAddr(); ra != nil {
		return ra.String()
	}
	return ""
}

// reconnect replaces a broken connection with a freshly dialed one and
// re-negotiates the framing the caller originally asked for. It returns
// a *TransportError when the client has no redial target (NewClient
// over a raw conn) or the dial fails.
func (c *Client[T]) reconnect() error {
	if c.redial == nil {
		return &TransportError{Op: "DIAL", Attempts: 1,
			Err: errors.New("connection broken and no redial target (wrap with Dial to enable reconnects)")}
	}
	conn, err := c.redial()
	if err != nil {
		return &TransportError{Op: "DIAL", Attempts: 1, Err: err}
	}
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = conn
	c.r.Reset(conn)
	c.w.Reset(conn)
	c.bin = false
	c.frame = nil
	c.broken = false
	c.aborted.Store(false)
	if c.wantBin {
		if _, err := c.Negotiate(); err != nil {
			c.broken = true
			return err
		}
	}
	return nil
}

// do runs one whole operation (request plus full reply) with the
// client's fault-tolerance policy: reconnect first if the connection is
// known broken, classify failures, and — for idempotent operations with
// retry configured — re-dial and re-run with jittered exponential
// backoff. Protocol errors (the server answered ERR, or answered
// something unparseable on an intact stream) are returned as-is and
// never retried; transport failures poison the connection and surface
// as *TransportError.
func (c *Client[T]) do(op string, idempotent bool, fn func() error) error {
	attempts := 0
	for {
		attempts++
		var err error
		if c.broken {
			err = c.reconnect()
		}
		if err == nil {
			err = fn()
			if err == nil {
				return nil
			}
			if !isTransport(err) {
				return err // protocol-level: the stream is intact
			}
			// The reply stream can no longer be trusted; any buffered
			// bytes may belong to the failed exchange.
			c.broken = true
		}
		te := transportErr(err)
		if !idempotent || attempts > c.retries || c.redial == nil {
			te.Op, te.Attempts = op, attempts
			return te
		}
		c.retryCount++
		if d := jitteredBackoff(c.backoff, attempts); d > 0 {
			time.Sleep(d)
		}
	}
}

// Negotiate sends HELLO BIN and upgrades the connection to the binary
// framing if the server agrees. It offers the newest framing version
// first and descends on each ERR decline — a current server answers
// BIN 2 immediately, a BIN-1-only build declines once and accepts BIN 1,
// and an older server that has never heard of HELLO declines every
// version, leaving the client in text mode: each HELLO is a single line
// and each ERR a single line, so the stream stays synchronized
// throughout. It returns (true, nil) on upgrade and (false, nil) when
// every version was declined. Only transport failures return an error.
// Negotiate is a no-op on an already-binary connection.
func (c *Client[T]) Negotiate() (bool, error) {
	if c.bin {
		return true, nil
	}
	for ver := binaryVersionMax; ver >= binaryVersionMin; ver-- {
		c.armWrite()
		if _, err := fmt.Fprintf(c.w, "HELLO BIN %d\n", ver); err != nil {
			return false, transportErr(err)
		}
		if err := c.w.Flush(); err != nil {
			return false, transportErr(err)
		}
		c.armRead()
		line, err := c.r.ReadString('\n')
		if err != nil {
			return false, transportErr(err)
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "ERR ") {
			continue
		}
		if line != fmt.Sprintf("HELLO BIN %d", ver) {
			return false, fmt.Errorf("server: unexpected HELLO response %q", line)
		}
		c.bin = true
		c.binVer = ver
		return true, nil
	}
	return false, nil
}

// Binary reports whether the connection negotiated the binary framing.
func (c *Client[T]) Binary() bool { return c.bin }

// BinaryVersion returns the negotiated binary framing version, 0 while
// in text framing.
func (c *Client[T]) BinaryVersion() int {
	if !c.bin {
		return 0
	}
	return c.binVer
}

// writeFrame ships one framed request and flushes it.
func (c *Client[T]) writeFrame(op byte, payload []byte) error {
	c.armWrite()
	var hdr [frameHeader]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return transportErr(err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return transportErr(err)
	}
	return transportErrOrNil(c.w.Flush())
}

// transportErrOrNil wraps err as a transport error, passing nil through
// (a non-nil *TransportError inside a nil-checked error interface would
// not compare equal to nil).
func transportErrOrNil(err error) error {
	if err == nil {
		return nil
	}
	return transportErr(err)
}

// readFrame fetches the next reply frame's payload into c.frame.
func (c *Client[T]) readFrame() error {
	c.armRead()
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return transportErr(err)
	}
	if hdr[0] != opReply {
		// Framing violations desynchronize the stream: transport-class.
		return transportErr(fmt.Errorf("client: unexpected frame opcode 0x%02x", hdr[0]))
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrameBytes {
		return transportErr(fmt.Errorf("client: reply frame length %d exceeds cap %d", n, MaxFrameBytes))
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return transportErr(err)
	}
	c.frame = buf
	return nil
}

// readLine returns the next reply line including its trailing newline —
// straight off the stream in text framing, sliced out of the current
// reply frame in binary framing.
func (c *Client[T]) readLine() (string, error) {
	if !c.bin {
		c.armRead()
		line, err := c.r.ReadString('\n')
		return line, transportErrOrNil(err)
	}
	if len(c.frame) == 0 {
		if err := c.readFrame(); err != nil {
			return "", err
		}
	}
	if i := bytes.IndexByte(c.frame, '\n'); i >= 0 {
		line := string(c.frame[:i+1])
		c.frame = c.frame[i+1:]
		return line, nil
	}
	line := string(c.frame)
	c.frame = nil
	return line, nil
}

// readBlobInto fills blob with reply payload bytes — the body of a SNAP
// response, which in binary framing rides in the same frame as its
// header line.
func (c *Client[T]) readBlobInto(blob []byte) error {
	if !c.bin {
		// Arm per chunk, not per blob: a large snapshot may legitimately
		// take many read deadlines' worth of wall clock as long as bytes
		// keep flowing.
		for len(blob) > 0 {
			c.armRead()
			n, err := c.r.Read(blob)
			blob = blob[n:]
			if err != nil {
				if err == io.EOF && len(blob) == 0 {
					return nil
				}
				return transportErr(err)
			}
		}
		return nil
	}
	for len(blob) > 0 {
		if len(c.frame) == 0 {
			if err := c.readFrame(); err != nil {
				return err
			}
		}
		n := copy(blob, c.frame)
		c.frame = c.frame[n:]
		blob = blob[n:]
	}
	return nil
}

// closeGraceTimeout bounds Close's wait for the server's BYE: a dead or
// stalled peer must not hang Close forever.
const closeGraceTimeout = time.Second

// Close sends QUIT, waits for the server's BYE — which the server only
// sends after flushing this connection's buffered updates into the
// shared summary — and closes the connection. The BYE wait is bounded
// (by the IO timeout when configured, else one second): against a dead
// peer Close gives up the handshake and just closes.
func (c *Client[T]) Close() error {
	if c.conn == nil {
		return nil
	}
	if !c.broken {
		grace := c.ioTimeout
		if grace <= 0 || grace > closeGraceTimeout {
			grace = closeGraceTimeout
		}
		c.conn.SetDeadline(time.Now().Add(grace))
		if c.bin {
			if err := c.writeFrame(opCmd, []byte("QUIT")); err == nil {
				_, _ = c.readLine()
			}
		} else {
			fmt.Fprintln(c.w, "QUIT")
			if err := c.w.Flush(); err == nil {
				_, _ = c.r.ReadString('\n')
			}
		}
	}
	return c.conn.Close()
}

func (c *Client[T]) roundTrip(format string, args ...any) (string, error) {
	if c.bin {
		c.cmdBuf = fmt.Appendf(c.cmdBuf[:0], format, args...)
		if err := c.writeFrame(opCmd, c.cmdBuf); err != nil {
			return "", err
		}
	} else {
		c.armWrite()
		if _, err := fmt.Fprintf(c.w, format+"\n", args...); err != nil {
			return "", transportErr(err)
		}
		if err := c.w.Flush(); err != nil {
			return "", transportErr(err)
		}
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("server: %s", line[4:])
	}
	return line, nil
}

// Update sends a weighted update. Not idempotent: a transport failure
// returns a *TransportError and is never auto-retried — the caller
// decides whether re-sending risks double counting.
func (c *Client[T]) Update(item T, weight int64) error {
	return c.do("U", false, func() error {
		resp, err := c.roundTrip("U %d %d", int64(item), weight)
		if err != nil {
			return err
		}
		if resp != "OK" {
			return fmt.Errorf("server: unexpected response %q", resp)
		}
		return nil
	})
}

// UpdateBatch sends a batch of weighted updates as UB blocks — one
// buffered write and one round trip per block instead of per update —
// and waits for the server's acknowledgement. Batches longer than the
// server's MaxWireBatch cap are chunked transparently. Each block is
// all-or-nothing on the server: mismatched lengths here or a negative
// weight there reject it with no updates from that block applied.
func (c *Client[T]) UpdateBatch(items []T, weights []int64) error {
	if len(items) != len(weights) {
		return fmt.Errorf("client: batch length mismatch: %d items, %d weights", len(items), len(weights))
	}
	for lo := 0; lo < len(items); lo += MaxWireBatch {
		hi := min(lo+MaxWireBatch, len(items))
		if err := c.updateBlock("", items[lo:hi], weights[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// updateBlock ships one block of at most MaxWireBatch pairs, scoped to
// tenant id when non-empty — a UB block in text framing, one opPairs
// frame in binary framing. A tenant-scoped block on a BIN 1 connection
// has no batch encoding (v1 pairs frames carry no id, and UB's pair
// lines belong to the text framing), so it degrades to per-update
// TENANT U command frames. Not idempotent: transport failures surface
// as *TransportError, never auto-retried (each block is all-or-nothing
// on the server, but a lost acknowledgement leaves applied-or-not
// unknowable here).
func (c *Client[T]) updateBlock(id string, items []T, weights []int64) error {
	if len(items) == 0 {
		return nil
	}
	return c.do("UB", false, func() error {
		switch {
		case c.bin && (id == "" || c.binVer >= 2):
			return c.updateBlockBinary(id, items, weights)
		case c.bin:
			// BIN 1 with a tenant scope: per-update command frames.
			for i := range items {
				resp, err := c.roundTrip("TENANT %s U %d %d", id, int64(items[i]), weights[i])
				if err != nil {
					return err
				}
				if resp != "OK" {
					return fmt.Errorf("server: unexpected response %q", resp)
				}
			}
			return nil
		default:
			return c.updateBlockText(id, items, weights)
		}
	})
}

// updateBlockText ships one UB block over the text framing, prefixed
// with a TENANT scope when id is non-empty.
func (c *Client[T]) updateBlockText(id string, items []T, weights []int64) error {
	c.armWrite()
	var err error
	if id == "" {
		_, err = fmt.Fprintf(c.w, "UB %d\n", len(items))
	} else {
		_, err = fmt.Fprintf(c.w, "TENANT %s UB %d\n", id, len(items))
	}
	if err != nil {
		return transportErr(err)
	}
	buf := make([]byte, 0, 48)
	for i := range items {
		buf = strconv.AppendInt(buf[:0], int64(items[i]), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, weights[i], 10)
		buf = append(buf, '\n')
		if _, err := c.w.Write(buf); err != nil {
			return transportErr(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return transportErr(err)
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return fmt.Errorf("server: %s", line[4:])
	}
	var n int
	if _, err := fmt.Sscanf(line, "OK %d", &n); err != nil || n != len(items) {
		return fmt.Errorf("server: unexpected batch response %q", line)
	}
	return nil
}

// updateBlockBinary encodes one pairs frame — pairSize bytes per
// update, little-endian item then weight, preceded on a BIN 2
// connection by the tenant-id prefix (length 0 = global) — and waits
// for the same "OK <n>" the text block gets. The encoding buffer is
// reused, so a steady stream of equal-size blocks allocates nothing.
func (c *Client[T]) updateBlockBinary(id string, items []T, weights []int64) error {
	prefix := 0
	if c.binVer >= 2 {
		prefix = 2 + len(id)
	}
	need := prefix + len(items)*pairSize
	if cap(c.cmdBuf) < need {
		c.cmdBuf = make([]byte, need)
	}
	buf := c.cmdBuf[:need]
	if c.binVer >= 2 {
		binary.LittleEndian.PutUint16(buf, uint16(len(id)))
		copy(buf[2:], id)
	}
	pairs := buf[prefix:]
	for i := range items {
		binary.LittleEndian.PutUint64(pairs[i*pairSize:], uint64(int64(items[i])))
		binary.LittleEndian.PutUint64(pairs[i*pairSize+8:], uint64(weights[i]))
	}
	if err := c.writeFrame(opPairs, buf); err != nil {
		return err
	}
	line, err := c.readLine()
	if err != nil {
		return err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return fmt.Errorf("server: %s", line[4:])
	}
	var n int
	if _, err := fmt.Sscanf(line, "OK %d", &n); err != nil || n != len(items) {
		return fmt.Errorf("server: unexpected batch response %q", line)
	}
	return nil
}

// Query returns (estimate, lowerBound, upperBound) for item in one
// round trip. Idempotent: retried under WithRetry.
func (c *Client[T]) Query(item T) (est, lb, ub int64, err error) {
	err = c.do("EST", true, func() error {
		resp, rerr := c.roundTrip("EST %d", int64(item))
		if rerr != nil {
			return rerr
		}
		if _, serr := fmt.Sscanf(resp, "EST %d %d %d", &est, &lb, &ub); serr != nil {
			return fmt.Errorf("server: bad response %q", resp)
		}
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return est, lb, ub, nil
}

// readMulti parses a MULTI block into rows.
func (c *Client[T]) readMulti(header string) ([]freq.Row[T], error) {
	var n int
	if _, err := fmt.Sscanf(header, "MULTI %d", &n); err != nil {
		return nil, fmt.Errorf("server: bad multi header %q", header)
	}
	rows := make([]freq.Row[T], 0, n)
	for i := 0; i < n; i++ {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		var item int64
		var r freq.Row[T]
		if _, err := fmt.Sscanf(strings.TrimSpace(line), "ITEM %d %d %d %d",
			&item, &r.Estimate, &r.LowerBound, &r.UpperBound); err != nil {
			return nil, fmt.Errorf("server: bad row %q", line)
		}
		r.Item = T(item)
		rows = append(rows, r)
	}
	return rows, nil
}

// TopK returns the n largest items (server-side TOPK command, answered
// from the server's epoch-cached merged view). Idempotent: retried
// under WithRetry.
func (c *Client[T]) TopK(n int) ([]freq.Row[T], error) {
	var rows []freq.Row[T]
	err := c.do("TOPK", true, func() error {
		resp, err := c.roundTrip("TOPK %d", n)
		if err != nil {
			return err
		}
		rows, err = c.readMulti(resp)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Top returns the n largest items. Deprecated name kept for existing
// callers; identical to TopK.
func (c *Client[T]) Top(n int) ([]freq.Row[T], error) { return c.TopK(n) }

// FrequentItemsAboveThreshold returns items qualifying against an
// absolute threshold under et (server-side FI command). Idempotent:
// retried under WithRetry.
func (c *Client[T]) FrequentItemsAboveThreshold(threshold int64, et freq.ErrorType) ([]freq.Row[T], error) {
	return c.doMulti("FI", "FI %d %d", int(et), threshold)
}

// HeavyHitters returns items above phi (in [0,1]) of the stream weight.
// Idempotent: retried under WithRetry.
func (c *Client[T]) HeavyHitters(phi float64) ([]freq.Row[T], error) {
	return c.doMulti("HH", "HH %d", int(phi*1000))
}

// doMulti runs one idempotent MULTI-replying command under the retry
// policy.
func (c *Client[T]) doMulti(op, format string, args ...any) ([]freq.Row[T], error) {
	var rows []freq.Row[T]
	err := c.do(op, true, func() error {
		resp, err := c.roundTrip(format, args...)
		if err != nil {
			return err
		}
		rows, err = c.readMulti(resp)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Stats returns the server-side stream weight and error band.
// Idempotent: retried under WithRetry.
func (c *Client[T]) Stats() (n, maxErr int64, err error) {
	err = c.do("STATS", true, func() error {
		resp, rerr := c.roundTrip("STATS")
		if rerr != nil {
			return rerr
		}
		var shards int
		if _, serr := fmt.Sscanf(resp, "STATS n=%d err=%d shards=%d", &n, &maxErr, &shards); serr != nil {
			return fmt.Errorf("server: bad stats %q", resp)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return n, maxErr, nil
}

// Snapshot fetches the serialized summary and decodes it into a sketch —
// the §3 geographically-distributed pattern over the wire, and the unit
// the Cluster fan-out merges. Idempotent: retried under WithRetry.
func (c *Client[T]) Snapshot() (*freq.Sketch[T], error) {
	return c.doSnapshot("SNAP", "SNAP")
}

// doSnapshot runs one idempotent snapshot-replying command under the
// retry policy.
func (c *Client[T]) doSnapshot(op, format string, args ...any) (*freq.Sketch[T], error) {
	var sk *freq.Sketch[T]
	err := c.do(op, true, func() error {
		resp, err := c.roundTrip(format, args...)
		if err != nil {
			return err
		}
		sk, err = c.readSnapshot(resp)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sk, nil
}

// readSnapshot consumes a "SNAP <bytes>" header's blob and decodes it.
func (c *Client[T]) readSnapshot(header string) (*freq.Sketch[T], error) {
	var n int
	if _, err := fmt.Sscanf(header, "SNAP %d", &n); err != nil {
		return nil, fmt.Errorf("server: bad snapshot header %q", header)
	}
	blob := make([]byte, n)
	if err := c.readBlobInto(blob); err != nil {
		return nil, err
	}
	c.lastSnapBytes = n
	sk, err := freq.New[T](64)
	if err != nil {
		return nil, err
	}
	if err := sk.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return sk, nil
}

// Window-scoped pass-throughs: each maps onto the WIN command, scoping
// the query to the merged view of the server's last w window intervals.
// They error when the server runs without a window.

// QueryWindow returns (estimate, lowerBound, upperBound) for item over
// the last w intervals of the server's sliding window. Idempotent:
// retried under WithRetry.
func (c *Client[T]) QueryWindow(w int, item T) (est, lb, ub int64, err error) {
	err = c.do("WIN EST", true, func() error {
		resp, rerr := c.roundTrip("WIN %d EST %d", w, int64(item))
		if rerr != nil {
			return rerr
		}
		if _, serr := fmt.Sscanf(resp, "EST %d %d %d", &est, &lb, &ub); serr != nil {
			return fmt.Errorf("server: bad response %q", resp)
		}
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return est, lb, ub, nil
}

// TopKWindow returns the n largest items over the last w intervals.
// Idempotent: retried under WithRetry.
func (c *Client[T]) TopKWindow(w, n int) ([]freq.Row[T], error) {
	return c.doMulti("WIN TOPK", "WIN %d TOPK %d", w, n)
}

// FrequentItemsAboveThresholdWindow returns items qualifying against an
// absolute threshold under et over the last w intervals. Idempotent:
// retried under WithRetry.
func (c *Client[T]) FrequentItemsAboveThresholdWindow(w int, threshold int64, et freq.ErrorType) ([]freq.Row[T], error) {
	return c.doMulti("WIN FI", "WIN %d FI %d %d", w, int(et), threshold)
}

// SnapshotWindow fetches the serialized merged view of the last w
// intervals and decodes it into an ordinary sketch — the blob is the
// standard single-sketch wire format, so the result merges and queries
// like any other snapshot (Cluster.RefreshWindow fans this out).
// Idempotent: retried under WithRetry.
func (c *Client[T]) SnapshotWindow(w int) (*freq.Sketch[T], error) {
	return c.doSnapshot("WIN SNAP", "WIN %d SNAP", w)
}

// Range-scoped pass-throughs: each maps onto the RANGE command, scoping
// the query to the merged summary of every window slot the server's
// durable store persisted over [from, to). Bounds travel as unix
// seconds. They error when the server runs without a store.

// QueryRange returns (estimate, lowerBound, upperBound) for item over
// the stored history covering [from, to). Idempotent: retried under
// WithRetry.
func (c *Client[T]) QueryRange(from, to time.Time, item T) (est, lb, ub int64, err error) {
	err = c.do("RANGE EST", true, func() error {
		resp, rerr := c.roundTrip("RANGE %d %d EST %d", from.Unix(), to.Unix(), int64(item))
		if rerr != nil {
			return rerr
		}
		if _, serr := fmt.Sscanf(resp, "EST %d %d %d", &est, &lb, &ub); serr != nil {
			return fmt.Errorf("server: bad response %q", resp)
		}
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return est, lb, ub, nil
}

// TopKRange returns the n largest items over the stored history
// covering [from, to). Idempotent: retried under WithRetry.
func (c *Client[T]) TopKRange(from, to time.Time, n int) ([]freq.Row[T], error) {
	return c.doMulti("RANGE TOPK", "RANGE %d %d TOPK %d", from.Unix(), to.Unix(), n)
}

// FrequentItemsAboveThresholdRange returns items qualifying against an
// absolute threshold under et over the stored history covering
// [from, to). Idempotent: retried under WithRetry.
func (c *Client[T]) FrequentItemsAboveThresholdRange(from, to time.Time, threshold int64, et freq.ErrorType) ([]freq.Row[T], error) {
	return c.doMulti("RANGE FI", "RANGE %d %d FI %d %d", from.Unix(), to.Unix(), int(et), threshold)
}

// SnapshotRange fetches the serialized merged summary of the stored
// history covering [from, to) — the standard single-sketch wire format,
// decoded like any other snapshot. Idempotent: retried under WithRetry.
func (c *Client[T]) SnapshotRange(from, to time.Time) (*freq.Sketch[T], error) {
	return c.doSnapshot("RANGE SNAP", "RANGE %d %d SNAP", from.Unix(), to.Unix())
}

// Rotate advances the server's sliding window one interval and returns
// the server's total rotation count. Not idempotent (each call advances
// the ring): transport failures are never auto-retried.
func (c *Client[T]) Rotate() (rotations int64, err error) {
	err = c.do("ROTATE", false, func() error {
		resp, rerr := c.roundTrip("ROTATE")
		if rerr != nil {
			return rerr
		}
		if _, serr := fmt.Sscanf(resp, "OK %d", &rotations); serr != nil {
			return fmt.Errorf("server: unexpected response %q", resp)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return rotations, nil
}

// Reset clears the server-side summary. Not auto-retried.
func (c *Client[T]) Reset() error {
	return c.do("RESET", false, func() error {
		resp, err := c.roundTrip("RESET")
		if err != nil {
			return err
		}
		if resp != "OK" {
			return fmt.Errorf("server: unexpected response %q", resp)
		}
		return nil
	})
}

// Raw sends a raw protocol line and returns the first response line
// (diagnostics and protocol tests). The command's idempotence is
// unknowable here, so Raw is never auto-retried.
func (c *Client[T]) Raw(line string) (string, error) {
	var resp string
	err := c.do("RAW", false, func() error {
		var rerr error
		resp, rerr = c.roundTrip("%s", line)
		return rerr
	})
	if err != nil {
		return "", err
	}
	return resp, nil
}

// Err returns the first transport or protocol error encountered by the
// freq.Queryable-shaped methods, or nil. It does not reset.
func (c *Client[T]) Err() error { return c.err }

// fail records the first Queryable-path error.
func (c *Client[T]) fail(err error) {
	if c.err == nil && err != nil {
		c.err = err
	}
}

// Estimate returns the remote point estimate for item (one EST round
// trip); 0 and a sticky Err on transport failure.
func (c *Client[T]) Estimate(item T) int64 {
	est, _, _, err := c.Query(item)
	c.fail(err)
	return est
}

// LowerBound returns the remote lower bound for item.
func (c *Client[T]) LowerBound(item T) int64 {
	_, lb, _, err := c.Query(item)
	c.fail(err)
	return lb
}

// UpperBound returns the remote upper bound for item.
func (c *Client[T]) UpperBound(item T) int64 {
	_, _, ub, err := c.Query(item)
	c.fail(err)
	return ub
}

// MaximumError returns the remote summary's error band (via STATS).
func (c *Client[T]) MaximumError() int64 {
	_, maxErr, err := c.Stats()
	c.fail(err)
	return maxErr
}

// StreamWeight returns the remote stream weight (via STATS).
func (c *Client[T]) StreamWeight() int64 {
	n, _, err := c.Stats()
	c.fail(err)
	return n
}

// All fetches every tracked row (FI with threshold 0, no false
// negatives) and iterates the result — the remote leg of the
// freq.Queryable contract. The fetch happens when iteration starts; a
// transport failure yields nothing and sets Err.
func (c *Client[T]) All() iter.Seq2[T, freq.Row[T]] {
	return func(yield func(T, freq.Row[T]) bool) {
		rows, err := c.FrequentItemsAboveThreshold(0, freq.NoFalseNegatives)
		if err != nil {
			c.fail(err)
			return
		}
		for _, r := range rows {
			if !yield(r.Item, r) {
				return
			}
		}
	}
}
