package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"

	"repro/freq"
)

// Client speaks the line protocol to a Server. It is a thin synchronous
// wrapper suitable for collectors and tests; it is not safe for
// concurrent use (open one per goroutine — the server side is concurrent).
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (e.g. net.Pipe in tests).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}
}

// Close sends QUIT, waits for the server's BYE — which the server only
// sends after flushing this connection's buffered updates into the
// shared summary — and closes the connection.
func (c *Client) Close() error {
	fmt.Fprintln(c.w, "QUIT")
	c.w.Flush()
	_, _ = c.r.ReadString('\n')
	return c.conn.Close()
}

func (c *Client) roundTrip(format string, args ...any) (string, error) {
	if _, err := fmt.Fprintf(c.w, format+"\n", args...); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("server: %s", line[4:])
	}
	return line, nil
}

// Update sends a weighted update.
func (c *Client) Update(item, weight int64) error {
	resp, err := c.roundTrip("U %d %d", item, weight)
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("server: unexpected response %q", resp)
	}
	return nil
}

// UpdateBatch sends a batch of weighted updates as UB blocks — one
// buffered write and one round trip per block instead of per update —
// and waits for the server's acknowledgement. Batches longer than the
// server's MaxWireBatch cap are chunked transparently. Each block is
// all-or-nothing on the server: mismatched lengths here or a negative
// weight there reject it with no updates from that block applied.
func (c *Client) UpdateBatch(items, weights []int64) error {
	if len(items) != len(weights) {
		return fmt.Errorf("client: batch length mismatch: %d items, %d weights", len(items), len(weights))
	}
	for lo := 0; lo < len(items); lo += MaxWireBatch {
		hi := min(lo+MaxWireBatch, len(items))
		if err := c.updateBlock(items[lo:hi], weights[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// updateBlock ships one UB block of at most MaxWireBatch pairs.
func (c *Client) updateBlock(items, weights []int64) error {
	if len(items) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(c.w, "UB %d\n", len(items)); err != nil {
		return err
	}
	buf := make([]byte, 0, 48)
	for i := range items {
		buf = strconv.AppendInt(buf[:0], items[i], 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, weights[i], 10)
		buf = append(buf, '\n')
		if _, err := c.w.Write(buf); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return fmt.Errorf("server: %s", line[4:])
	}
	var n int
	if _, err := fmt.Sscanf(line, "OK %d", &n); err != nil || n != len(items) {
		return fmt.Errorf("server: unexpected batch response %q", line)
	}
	return nil
}

// Query returns (estimate, lowerBound, upperBound) for item.
func (c *Client) Query(item int64) (est, lb, ub int64, err error) {
	resp, err := c.roundTrip("Q %d", item)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(resp, "EST %d %d %d", &est, &lb, &ub); err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad response %q", resp)
	}
	return est, lb, ub, nil
}

// readMulti parses a MULTI block into rows.
func (c *Client) readMulti(header string) ([]freq.Row[int64], error) {
	var n int
	if _, err := fmt.Sscanf(header, "MULTI %d", &n); err != nil {
		return nil, fmt.Errorf("server: bad multi header %q", header)
	}
	rows := make([]freq.Row[int64], 0, n)
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		var r freq.Row[int64]
		if _, err := fmt.Sscanf(strings.TrimSpace(line), "ITEM %d %d %d %d",
			&r.Item, &r.Estimate, &r.LowerBound, &r.UpperBound); err != nil {
			return nil, fmt.Errorf("server: bad row %q", line)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Top returns the n largest items.
func (c *Client) Top(n int) ([]freq.Row[int64], error) {
	resp, err := c.roundTrip("TOP %d", n)
	if err != nil {
		return nil, err
	}
	return c.readMulti(resp)
}

// HeavyHitters returns items above phi (in [0,1]) of the stream weight.
func (c *Client) HeavyHitters(phi float64) ([]freq.Row[int64], error) {
	resp, err := c.roundTrip("HH %d", int(phi*1000))
	if err != nil {
		return nil, err
	}
	return c.readMulti(resp)
}

// Stats returns the server-side stream weight and error band.
func (c *Client) Stats() (n, maxErr int64, err error) {
	resp, err := c.roundTrip("STATS")
	if err != nil {
		return 0, 0, err
	}
	var shards int
	if _, err := fmt.Sscanf(resp, "STATS n=%d err=%d shards=%d", &n, &maxErr, &shards); err != nil {
		return 0, 0, fmt.Errorf("server: bad stats %q", resp)
	}
	return n, maxErr, nil
}

// Snapshot fetches the serialized summary and decodes it into a sketch —
// the §3 geographically-distributed pattern over the wire.
func (c *Client) Snapshot() (*freq.Sketch[int64], error) {
	resp, err := c.roundTrip("SNAPSHOT")
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(resp, "SNAP %d", &n); err != nil {
		return nil, fmt.Errorf("server: bad snapshot header %q", resp)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(c.r, blob); err != nil {
		return nil, err
	}
	sk, err := freq.New[int64](64)
	if err != nil {
		return nil, err
	}
	if err := sk.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return sk, nil
}

// Reset clears the server-side summary.
func (c *Client) Reset() error {
	resp, err := c.roundTrip("RESET")
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("server: unexpected response %q", resp)
	}
	return nil
}

// Raw sends a raw protocol line and returns the first response line
// (diagnostics and protocol tests).
func (c *Client) Raw(line string) (string, error) {
	return c.roundTrip("%s", line)
}
