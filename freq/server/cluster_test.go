package server

import (
	"reflect"
	"strings"
	"testing"

	"repro/freq"
	"repro/freq/stream"
)

// startCluster boots n in-process servers and returns their addresses.
func startCluster(t *testing.T, n int, cfg Config) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = startServer(t, cfg).addr
	}
	return addrs
}

// TestQueryablePropertyAcrossBackends is the satellite property test: a
// Query over a local Sketch, a sharded Concurrent, and a 3-node
// in-process Cluster fed the same stream returns identical rows — the
// mergeable-summaries promise, pinned end to end. The budget is chosen
// so nothing is evicted anywhere (exact regime); in that regime the
// three read paths must agree bit for bit, including tie order.
func TestQueryablePropertyAcrossBackends(t *testing.T) {
	updates, err := stream.ZipfStream(1.1, 1<<9, 20_000, 500, 42)
	if err != nil {
		t.Fatal(err)
	}

	const k = 8192
	sk, err := freq.New[int64](k)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := freq.NewConcurrent[int64](k, freq.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	addrs := startCluster(t, 3, Config{MaxCounters: k, Shards: 4})
	cluster, err := DialCluster[int64](addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })

	// Feed all three the same stream; the cluster's copy is partitioned
	// round-robin over the nodes through the wire batch path.
	nodeItems := make([][]int64, 3)
	nodeWeights := make([][]int64, 3)
	var total int64
	for i, u := range updates {
		if err := sk.Update(u.Item, u.Weight); err != nil {
			t.Fatal(err)
		}
		if err := conc.Update(u.Item, u.Weight); err != nil {
			t.Fatal(err)
		}
		nodeItems[i%3] = append(nodeItems[i%3], u.Item)
		nodeWeights[i%3] = append(nodeWeights[i%3], u.Weight)
		total += u.Weight
	}
	for i, addr := range addrs {
		c, err := Dial[int64](addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.UpdateBatch(nodeItems[i], nodeWeights[i]); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.Refresh(); err != nil {
		t.Fatal(err)
	}
	if cluster.StreamWeight() != total {
		t.Fatalf("cluster N = %d, want %d", cluster.StreamWeight(), total)
	}

	backends := map[string]freq.Queryable[int64]{
		"sketch":     sk,
		"concurrent": conc,
		"cluster":    cluster,
	}
	queries := map[string]func(q freq.Queryable[int64]) []freq.Row[int64]{
		"top20": func(q freq.Queryable[int64]) []freq.Row[int64] {
			return freq.From[int64](q).Limit(20).Collect()
		},
		"threshold": func(q freq.Queryable[int64]) []freq.Row[int64] {
			return freq.From[int64](q).Where(total / 100).Collect()
		},
		"nfp-paged": func(q freq.Queryable[int64]) []freq.Row[int64] {
			return freq.From[int64](q).Where(50).WithErrorType(freq.NoFalsePositives).
				OrderBy(freq.OrderItem).Offset(5).Limit(10).Collect()
		},
	}
	for qname, run := range queries {
		want := run(backends["sketch"])
		if len(want) == 0 {
			t.Fatalf("%s: empty reference result", qname)
		}
		for bname, backend := range backends {
			got := run(backend)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s over %s: %d rows\n got %v\nwant %v", qname, bname, len(got), got, want)
			}
		}
	}

	// Point queries agree too (exact regime).
	for _, item := range []int64{0, 1, 7, 100, 511} {
		want := sk.Estimate(item)
		if got := conc.Estimate(item); got != want {
			t.Errorf("concurrent Estimate(%d) = %d, want %d", item, got, want)
		}
		if got := cluster.Estimate(item); got != want {
			t.Errorf("cluster Estimate(%d) = %d, want %d", item, got, want)
		}
	}
	if err := cluster.Err(); err != nil {
		t.Fatalf("cluster sticky error: %v", err)
	}
}

// TestClusterSnapshotIsolation pins that cluster reads are frozen
// between refreshes.
func TestClusterSnapshotIsolation(t *testing.T) {
	addrs := startCluster(t, 2, Config{MaxCounters: 1024, Shards: 2})
	ingest, err := Dial[int64](addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ingest.Close()
	if err := ingest.Update(7, 100); err != nil {
		t.Fatal(err)
	}
	// Single updates are buffered per connection; a read on the same
	// connection flushes them into the shared summary (see doc.go).
	if _, _, err := ingest.Stats(); err != nil {
		t.Fatal(err)
	}

	cluster, err := DialCluster[int64](addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if got := cluster.Estimate(7); got != 100 { // auto-refresh on first read
		t.Fatalf("Estimate(7) = %d, want 100", got)
	}
	// New writes are invisible until Refresh.
	if err := ingest.Update(7, 50); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ingest.Stats(); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Estimate(7); got != 100 {
		t.Errorf("pre-refresh Estimate(7) = %d, want 100", got)
	}
	if err := cluster.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Estimate(7); got != 150 {
		t.Errorf("post-refresh Estimate(7) = %d, want 150", got)
	}
	if got, err := cluster.TopK(1); err != nil || len(got) != 1 || got[0].Item != 7 {
		t.Errorf("TopK = %v, %v", got, err)
	}
}

// TestWireQueryCommands exercises the new protocol surface end to end:
// TOPK, FI (both semantics and mnemonic forms), EST, SNAP, and their
// error paths.
func TestWireQueryCommands(t *testing.T) {
	srv := startServer(t, Config{MaxCounters: 1024, Shards: 2})
	c := dial(t, srv)
	for item, weight := range map[int64]int64{1: 500, 2: 300, 3: 10} {
		if err := c.Update(item, weight); err != nil {
			t.Fatal(err)
		}
	}

	top, err := c.TopK(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Item != 1 || top[1].Item != 2 {
		t.Errorf("TopK = %v", top)
	}

	fi, err := c.FrequentItemsAboveThreshold(100, freq.NoFalsePositives)
	if err != nil {
		t.Fatal(err)
	}
	if len(fi) != 2 {
		t.Errorf("FI(100, NFP) = %v", fi)
	}
	// Mnemonic error-type spelling over the raw wire.
	resp, err := c.Raw("FI NFN 0")
	if err != nil || !strings.HasPrefix(resp, "MULTI 3") {
		t.Errorf("FI NFN 0 = %q, %v", resp, err)
	}
	for i := 0; i < 3; i++ { // drain the MULTI block
		if _, err := c.r.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}

	// EST is the Q alias used by the generic client.
	est, lb, ub, err := c.Query(1)
	if err != nil || est != 500 || lb != 500 || ub != 500 {
		t.Errorf("Query(1) = %d [%d, %d], %v", est, lb, ub, err)
	}

	// SNAP transfers the full summary.
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Estimate(1); got != 500 {
		t.Errorf("snapshot Estimate(1) = %d, want 500", got)
	}

	// Error paths keep the connection usable.
	for _, bad := range []string{"FI", "FI 2 0", "FI NFN x", "TOPK 0", "EST", "EST x"} {
		if _, err := c.Raw(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if _, _, _, err := c.Query(1); err != nil {
		t.Fatalf("connection dead after errors: %v", err)
	}
}

// TestClientQueryableOverWire runs the freq.Query builder against a
// remote server through the Client's Queryable implementation.
func TestClientQueryableOverWire(t *testing.T) {
	srv := startServer(t, Config{MaxCounters: 1024, Shards: 2})
	c := dial(t, srv)
	items := []int64{10, 20, 30, 10, 20, 10}
	weights := []int64{5, 5, 5, 5, 5, 5}
	if err := c.UpdateBatch(items, weights); err != nil {
		t.Fatal(err)
	}
	rows := freq.From[int64](c).Limit(2).Collect()
	if len(rows) != 2 || rows[0].Item != 10 || rows[0].Estimate != 15 || rows[1].Item != 20 {
		t.Errorf("builder over wire = %v", rows)
	}
	if got := c.StreamWeight(); got != 30 {
		t.Errorf("StreamWeight = %d, want 30", got)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("sticky error: %v", err)
	}
}

// TestClusterUintItems checks the generic client/cluster over an
// unsigned item domain (bit-faithful wire round trip).
func TestClusterUintItems(t *testing.T) {
	addrs := startCluster(t, 2, Config{MaxCounters: 512, Shards: 2})
	c, err := Dial[uint64](addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const big = uint64(1) << 63 // negative as int64 on the wire
	if err := c.UpdateBatch([]uint64{big}, []int64{42}); err != nil {
		t.Fatal(err)
	}
	cluster, err := DialCluster[uint64](addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if got := cluster.Estimate(big); got != 42 {
		t.Errorf("Estimate(2^63) = %d, want 42", got)
	}
	rows := cluster.Query().Limit(1).Collect()
	if len(rows) != 1 || rows[0].Item != big {
		t.Errorf("rows = %v", rows)
	}
}
