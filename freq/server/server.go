package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/freq"
)

// Config parameterizes a Server.
type Config struct {
	// MaxCounters is the total counter budget (default 24576).
	MaxCounters int
	// Shards is the concurrency fan-out (default 8).
	Shards int
}

// Server owns the live summary and serves the line protocol.
type Server struct {
	sketch *freq.Concurrent[int64]

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
	updates int64
	queries int64
	statsMu sync.Mutex
}

// New returns a server with a fresh summary.
func New(cfg Config) (*Server, error) {
	if cfg.MaxCounters == 0 {
		cfg.MaxCounters = 24576
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	sk, err := freq.NewConcurrent[int64](cfg.MaxCounters, freq.WithShards(cfg.Shards))
	if err != nil {
		return nil, err
	}
	return &Server{
		sketch: sk,
		conns:  map[net.Conn]struct{}{},
	}, nil
}

// Sketch exposes the underlying summary (for embedding and tests).
func (s *Server) Sketch() *freq.Concurrent[int64] { return s.sketch }

// Serve accepts connections on ln until Close is called. It returns
// net.ErrClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// MaxWireBatch caps a UB block so a malicious count cannot force an
// arbitrarily large allocation; Client.UpdateBatch transparently chunks
// larger batches.
const MaxWireBatch = 1 << 20

// conn is one connection's state: the protocol streams plus the
// per-connection buffered writer that carries the ingest hot path (one
// goroutine per connection makes the writer's single-goroutine contract
// hold by construction).
type conn struct {
	srv    *Server
	sc     *bufio.Scanner
	w      *bufio.Writer
	writer *freq.Writer[int64]
	// snapBuf is the connection's reusable SNAP encoding buffer: the
	// epoch-cached view serializes into it through the alloc-free
	// AppendBinary kernel, so a poll loop of SNAP commands allocates
	// nothing after the first.
	snapBuf []byte
}

func (s *Server) handle(nc net.Conn) {
	defer nc.Close()
	writer, err := freq.NewWriter(s.sketch)
	if err != nil {
		return // unreachable: no options are passed
	}
	defer writer.Close()
	c := &conn{srv: s, sc: bufio.NewScanner(nc), w: bufio.NewWriter(nc), writer: writer}
	c.sc.Buffer(make([]byte, 64*1024), 64*1024)
	for c.sc.Scan() {
		line := strings.TrimSpace(c.sc.Text())
		if line == "" {
			continue
		}
		quit, err := c.dispatch(line)
		if err != nil {
			fmt.Fprintf(c.w, "ERR %s\n", err)
		}
		if err := c.w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// dispatch executes one protocol line, writing the response to the
// connection. Updates (U, UB) ride the buffered batch path; every other
// command flushes the connection's writer first, so a connection always
// reads its own writes.
func (c *conn) dispatch(line string) (quit bool, err error) {
	s := c.srv
	w := c.w
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	if cmd != "U" && cmd != "UB" {
		if err := c.writer.Flush(); err != nil {
			return false, err
		}
	}
	switch cmd {
	case "U":
		if len(args) != 2 {
			return false, errors.New("usage: U <item> <weight>")
		}
		item, err1 := strconv.ParseInt(args[0], 10, 64)
		weight, err2 := strconv.ParseInt(args[1], 10, 64)
		if err1 != nil || err2 != nil {
			return false, errors.New("bad integer")
		}
		if err := c.writer.Add(item, weight); err != nil {
			return false, err
		}
		s.statsMu.Lock()
		s.updates++
		s.statsMu.Unlock()
		fmt.Fprintln(w, "OK")
	case "UB":
		if len(args) != 1 {
			return false, errors.New("usage: UB <count>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 || n > MaxWireBatch {
			return false, fmt.Errorf("batch count must be 1..%d", MaxWireBatch)
		}
		items := make([]int64, 0, n)
		weights := make([]int64, 0, n)
		var parseErr error
		for i := 0; i < n; i++ {
			// Consume the whole block even past a bad line, so one
			// malformed pair does not desynchronize the protocol.
			if !c.sc.Scan() {
				return true, errors.New("connection closed mid-batch")
			}
			f := strings.Fields(c.sc.Text())
			if parseErr != nil {
				continue
			}
			if len(f) != 2 {
				parseErr = fmt.Errorf("batch line %d: want \"<item> <weight>\"", i+1)
				continue
			}
			item, err1 := strconv.ParseInt(f[0], 10, 64)
			weight, err2 := strconv.ParseInt(f[1], 10, 64)
			if err1 != nil || err2 != nil {
				parseErr = fmt.Errorf("batch line %d: bad integer", i+1)
				continue
			}
			items = append(items, item)
			weights = append(weights, weight)
		}
		if parseErr != nil {
			return false, parseErr
		}
		// Preserve per-connection ordering: buffered singles land before
		// the batch, and the batch is all-or-nothing.
		if err := c.writer.Flush(); err != nil {
			return false, err
		}
		if err := s.sketch.UpdateWeightedBatch(items, weights); err != nil {
			return false, err
		}
		s.statsMu.Lock()
		s.updates += int64(n)
		s.statsMu.Unlock()
		fmt.Fprintf(w, "OK %d\n", n)
	case "Q", "EST":
		if len(args) != 1 {
			return false, fmt.Errorf("usage: %s <item>", cmd)
		}
		item, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return false, errors.New("bad integer")
		}
		s.statsMu.Lock()
		s.queries++
		s.statsMu.Unlock()
		fmt.Fprintf(w, "EST %d %d %d\n",
			s.sketch.Estimate(item), s.sketch.LowerBound(item), s.sketch.UpperBound(item))
	case "TOP", "TOPK":
		if len(args) != 1 {
			return false, fmt.Errorf("usage: %s <n>", cmd)
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return false, errors.New("bad count")
		}
		writeRows(w, s.sketch.TopK(n))
	case "FI":
		if len(args) != 2 {
			return false, errors.New("usage: FI <et> <threshold>")
		}
		et, err := parseErrorType(args[0])
		if err != nil {
			return false, err
		}
		threshold, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return false, errors.New("bad threshold")
		}
		writeRows(w, s.sketch.FrequentItemsAboveThreshold(threshold, et))
	case "HH":
		if len(args) != 1 {
			return false, errors.New("usage: HH <phi-millis>")
		}
		millis, err := strconv.Atoi(args[0])
		if err != nil || millis < 0 || millis > 1000 {
			return false, errors.New("phi-millis must be 0..1000")
		}
		threshold := int64(float64(millis) / 1000 * float64(s.sketch.StreamWeight()))
		writeRows(w, s.sketch.FrequentItemsAboveThreshold(threshold, freq.NoFalseNegatives))
	case "STATS":
		fmt.Fprintf(w, "STATS n=%d err=%d shards=%d\n",
			s.sketch.StreamWeight(), s.sketch.MaximumError(), s.sketch.NumShards())
	case "SNAPSHOT", "SNAP":
		// Serve from the epoch-cached merged view: repeated SNAPs with no
		// interleaved writes re-merge nothing, and the encoding reuses the
		// connection's buffer.
		v, err := s.sketch.View()
		if err != nil {
			return false, err
		}
		c.snapBuf, err = v.AppendBinary(c.snapBuf[:0])
		if err != nil {
			return false, err
		}
		fmt.Fprintf(w, "SNAP %d\n", len(c.snapBuf))
		if _, err := w.Write(c.snapBuf); err != nil {
			return false, err
		}
	case "RESET":
		s.sketch.Reset()
		fmt.Fprintln(w, "OK")
	case "QUIT":
		fmt.Fprintln(w, "BYE")
		return true, nil
	default:
		return false, fmt.Errorf("unknown command %q", cmd)
	}
	return false, nil
}

// parseErrorType reads the FI semantics field: the numeric freq values
// (0, 1) or the mnemonic names, case-insensitively.
func parseErrorType(s string) (freq.ErrorType, error) {
	switch strings.ToUpper(s) {
	case "0", "NFP", "NOFALSEPOSITIVES":
		return freq.NoFalsePositives, nil
	case "1", "NFN", "NOFALSENEGATIVES":
		return freq.NoFalseNegatives, nil
	}
	return 0, fmt.Errorf("bad error type %q (want 0/NFP or 1/NFN)", s)
}

func writeRows(w io.Writer, rows []freq.Row[int64]) {
	fmt.Fprintf(w, "MULTI %d\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(w, "ITEM %d %d %d %d\n", r.Item, r.Estimate, r.LowerBound, r.UpperBound)
	}
}

// Counters returns the number of updates and queries served (diagnostics).
func (s *Server) Counters() (updates, queries int64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.updates, s.queries
}
