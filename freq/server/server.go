package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/freq"
	"repro/freq/tenant"
)

// Config parameterizes a Server.
type Config struct {
	// MaxCounters is the total counter budget (default 24576). When a
	// window is configured it is also the per-interval budget of the
	// windowed summary.
	MaxCounters int
	// Shards is the concurrency fan-out (default 8).
	Shards int
	// WindowIntervals, when positive, additionally maintains a sliding
	// window of that many intervals alongside the all-time summary:
	// every update lands in both, the WIN command scopes queries to the
	// last w intervals, and ROTATE (or Server.Rotate, driven by freqd's
	// ticker) advances the window. Zero disables windowing.
	WindowIntervals int
	// Store, when set, backs the RANGE command family with a durable
	// history of retired window slots (typically a *store.Store[int64]
	// installed as the window's rotation sink). Nil disables RANGE.
	Store RangeStore
	// Tenants, when set, enables the TENANT command family: every
	// command scoped by a "TENANT <id>" prefix runs against that
	// tenant's own summary pair from the manager's registry instead of
	// the global pair. Nil disables tenant scoping.
	Tenants *tenant.Manager[int64]
	// TenantStore, when set, backs TENANT-scoped RANGE queries with each
	// tenant's durable history (typically a *store.Tenants[int64] also
	// installed as the manager's eviction sink). Nil disables them.
	TenantStore TenantRangeStore
	// Seed, when nonzero, pins the sketch hash seeds: two servers built
	// with the same Seed and geometry hold byte-identical summary state
	// after identical update streams, so their SNAP encodings compare
	// equal — the property the cross-framing conformance suite asserts.
	// Zero (the default) draws independent random seeds per server.
	Seed uint64
	// IdleTimeout, when positive, bounds how long a connection may sit
	// between commands: a peer that goes silent has its connection closed
	// after this long instead of pinning a handler goroutine forever.
	// Zero (the default) keeps idle connections open indefinitely.
	IdleTimeout time.Duration
	// IOTimeout, when positive, bounds the reads and writes within one
	// command — the pair lines of a UB block, a frame payload, a reply
	// flush — so a peer that stalls mid-command is cut off. Zero (the
	// default) leaves in-command IO unbounded (an idle timeout still
	// applies between commands).
	IOTimeout time.Duration
}

// RangeStore is the historical query surface the RANGE commands serve
// from: merge every persisted slot overlapping [from, to) into dst
// (cleared and reused when large enough, else replaced) and return the
// accumulator. *store.Store[int64] satisfies it.
type RangeStore interface {
	QueryInto(dst *freq.Sketch[int64], from, to time.Time) (*freq.Sketch[int64], error)
}

// TenantRangeStore is the tenant-scoped analogue of RangeStore: merge
// one tenant's persisted history overlapping [from, to) into dst.
// *store.Tenants[int64] satisfies it.
type TenantRangeStore interface {
	QueryTenantInto(id string, dst *freq.Sketch[int64], from, to time.Time) (*freq.Sketch[int64], error)
}

// Server owns the live summary and serves the line protocol.
type Server struct {
	sketch *freq.Concurrent[int64]
	// win is the optional sliding-window twin of the summary; nil when
	// Config.WindowIntervals is zero.
	win *freq.ConcurrentWindowed[int64]
	// store is the optional durable history behind RANGE; nil disables it.
	store RangeStore
	// tenants is the optional per-tenant registry behind the TENANT
	// command family; nil disables it.
	tenants *tenant.Manager[int64]
	// tenantStore is the optional per-tenant durable history behind
	// TENANT-scoped RANGE; nil disables it.
	tenantStore TenantRangeStore

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]*connState
	closed  bool
	wg      sync.WaitGroup
	updates int64
	queries int64
	statsMu sync.Mutex

	// idleTimeout/ioTimeout are Config.IdleTimeout/Config.IOTimeout.
	idleTimeout time.Duration
	ioTimeout   time.Duration
	// draining is set by Shutdown: handlers finish the command in flight
	// and exit instead of reading the next one.
	draining atomic.Bool
}

// connState is the drain-coordination handle for one connection: busy is
// held by the handler exactly while a command is being processed (from a
// successfully read request line or frame until its reply is flushed),
// so Shutdown can TryLock to distinguish idle connections — safe to
// close immediately — from in-flight ones, which get to finish.
type connState struct {
	busy sync.Mutex
}

// New returns a server with a fresh summary.
func New(cfg Config) (*Server, error) {
	if cfg.MaxCounters == 0 {
		cfg.MaxCounters = 24576
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	opts := []freq.Option{freq.WithShards(cfg.Shards)}
	if cfg.Seed != 0 {
		opts = append(opts, freq.WithSeed(cfg.Seed))
	}
	sk, err := freq.NewConcurrent[int64](cfg.MaxCounters, opts...)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		sketch:      sk,
		store:       cfg.Store,
		tenants:     cfg.Tenants,
		tenantStore: cfg.TenantStore,
		conns:       map[net.Conn]*connState{},
		idleTimeout: cfg.IdleTimeout,
		ioTimeout:   cfg.IOTimeout,
	}
	if cfg.WindowIntervals > 0 {
		var wopts []freq.Option
		if cfg.Seed != 0 {
			// Vary the pinned seed so the window ring never correlates
			// with the all-time summary's shards.
			wopts = append(wopts, freq.WithSeed(cfg.Seed^0x77696e646f777331))
		}
		win, err := freq.NewConcurrentWindowed[int64](cfg.MaxCounters, cfg.WindowIntervals, wopts...)
		if err != nil {
			return nil, err
		}
		srv.win = win
	}
	return srv, nil
}

// Sketch exposes the underlying summary (for embedding and tests).
func (s *Server) Sketch() *freq.Concurrent[int64] { return s.sketch }

// Windowed exposes the optional sliding-window summary; nil when the
// server was configured without one.
func (s *Server) Windowed() *freq.ConcurrentWindowed[int64] { return s.win }

// Tenants exposes the optional per-tenant registry; nil when the server
// was configured without one.
func (s *Server) Tenants() *tenant.Manager[int64] { return s.tenants }

// ErrNoWindow rejects window-scoped operations on a server configured
// without a sliding window.
var ErrNoWindow = errors.New("server: no window configured (set Config.WindowIntervals)")

// ErrNoStore rejects RANGE commands on a server configured without a
// durable store.
var ErrNoStore = errors.New("server: no store configured (set Config.Store)")

// ErrNoTenants rejects TENANT commands on a server configured without a
// tenant registry.
var ErrNoTenants = errors.New("server: no tenants configured (set Config.Tenants)")

// ErrNoTenantStore rejects TENANT-scoped RANGE commands on a server
// configured without a per-tenant durable store.
var ErrNoTenantStore = errors.New("server: no tenant store configured (set Config.TenantStore)")

// Rotate advances the sliding window one interval — the hook a
// rotation driver (freqd's wall-clock ticker, a test, an operator via
// the ROTATE command) calls at each interval boundary.
func (s *Server) Rotate() error {
	if s.win == nil {
		return ErrNoWindow
	}
	s.win.Rotate()
	return nil
}

// Serve accepts connections on ln until Close is called. It returns
// net.ErrClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		st := &connState{}
		s.conns[conn] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn, st)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, hard-closes all connections, and waits for
// handlers. Commands in flight are cut off mid-stream (their summary
// mutations stay all-or-nothing; see the drain tests). For a graceful
// stop that lets in-flight work finish, use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown gracefully drains the server: it stops accepting, closes
// connections that are idle between commands, and lets every command in
// flight — a UB block mid-pair-lines, a PAIRS frame mid-payload, a SNAP
// mid-blob — finish and flush its reply. Handlers exit after their
// current command instead of reading the next. When ctx expires before
// the drain completes, the remaining connections are hard-closed (their
// in-flight mutations remain all-or-nothing) and ctx's error is
// returned; a completed drain returns the listener's close error, if
// any. Safe to call concurrently with Close and from signal handlers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	s.draining.Store(true)
	var lnErr error
	if ln != nil && !alreadyClosed {
		lnErr = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	// Poll: close whichever connections are idle right now, then wait for
	// the rest to finish their in-flight command and exit on the draining
	// flag. The poll re-runs because a pipelining connection can only be
	// caught between commands.
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		s.closeIdleConns()
		select {
		case <-done:
			return lnErr
		case <-ctx.Done():
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			s.wg.Wait()
			return errors.Join(lnErr, ctx.Err())
		case <-tick.C:
		}
	}
}

// closeIdleConns closes every connection not currently processing a
// command: its handler is blocked reading the next request, and closing
// the conn wakes it into a clean exit (which still flushes the
// connection's buffered ingest into the summary).
func (s *Server) closeIdleConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for nc, st := range s.conns {
		if st.busy.TryLock() {
			nc.Close()
			st.busy.Unlock()
		}
	}
}

// MaxWireBatch caps a UB block so a malicious count cannot force an
// arbitrarily large allocation; Client.UpdateBatch transparently chunks
// larger batches.
const MaxWireBatch = 1 << 20

// conn is one connection's state: the protocol streams plus the
// per-connection buffered writer that carries the ingest hot path (one
// goroutine per connection makes the writer's single-goroutine contract
// hold by construction).
type conn struct {
	srv *Server
	// nc is the raw connection, kept for deadline arming.
	nc net.Conn
	// st is the drain-coordination handle shared with Server.Shutdown.
	st *connState
	// r replaces the line scanner so the connection can switch framings:
	// after a HELLO BIN upgrade the same buffered reader hands out binary
	// frames with nothing lost between the framing boundary.
	r *bufio.Reader
	// nw is the buffered writer over the real connection. w is where
	// dispatch writes command replies: identical to nw in text framing,
	// redirected into replyBuf in binary framing so each reply is framed
	// whole (see binaryLoop).
	nw     *bufio.Writer
	w      *bufio.Writer
	writer *freq.Writer[int64]
	// bin is set by a successful HELLO BIN negotiation; the text loop
	// hands the connection to binaryLoop when it sees it. binVer is the
	// negotiated binary version (1: v1 PAIRS frames only; 2: PAIRS
	// frames carry a tenant-id header, empty = global).
	bin    bool
	binVer int
	// idBuf holds the tenant id of the v2 PAIRS frame being served;
	// tenItems/tenWeights split its pairs into the column layout the
	// tenant batch path takes. All reused per connection so the binary
	// tenant ingest loop allocates nothing at steady state.
	idBuf      []byte
	tenItems   []int64
	tenWeights []int64
	// winItems/winWeights buffer this connection's single-U updates for
	// the windowed twin, mirroring the Writer's batching for the
	// all-time summary: without it every U would take the one
	// process-wide window mutex, serializing all connections on exactly
	// the per-update lock the Writer exists to avoid. Flushed together
	// with the writer (threshold, any non-update command, connection
	// end), so both summaries expose the same read-your-writes and
	// at-most-one-batch-lag semantics.
	winItems   []int64
	winWeights []int64
	// snapBuf is the connection's reusable SNAP encoding buffer: the
	// epoch-cached view serializes into it through the alloc-free
	// AppendBinary kernel, so a poll loop of SNAP commands allocates
	// nothing after the first.
	snapBuf []byte
	// rangeSk is the connection's reusable RANGE accumulator: the store
	// clears and refills it in place (QueryInto), so a poll loop over a
	// stable range allocates nothing after the first query.
	rangeSk *freq.Sketch[int64]
	// Binary-framing state (see binary.go): pairBuf is the reusable
	// frame payload buffer, allocated as pairs so the little-endian wire
	// layout reinterprets in place with correct alignment; replyBuf and
	// bw capture a command's reply so it can be framed whole; okBuf
	// renders the hot-path "OK <n>" acknowledgements without fmt.
	pairBuf  []freq.Pair[int64]
	replyBuf bytes.Buffer
	bw       *bufio.Writer
	okBuf    []byte
	// hdr is the frame-header scratch shared by the read and write
	// sides (never live at once): a local array would escape through
	// the io interfaces and cost one heap allocation per frame.
	hdr [frameHeader]byte
}

// errLineTooLong drops connections whose current line exceeds the
// 64 KiB framing limit; there is no way to resynchronize mid-line.
var errLineTooLong = errors.New("server: line exceeds 64 KiB limit")

// armIdle arms the between-commands read deadline. When only an IO
// timeout is configured the previous command's deadline is cleared, so
// a legitimately quiet connection is not killed by a stale in-command
// deadline.
//
//freq:noalloc
func (c *conn) armIdle() {
	switch {
	case c.srv.idleTimeout > 0:
		c.nc.SetReadDeadline(time.Now().Add(c.srv.idleTimeout))
	case c.srv.ioTimeout > 0:
		c.nc.SetReadDeadline(time.Time{})
	}
}

// armIO arms the in-command deadline around both directions: the rest
// of the request (pair lines, frame payload) and the reply flush.
//
//freq:noalloc
func (c *conn) armIO() {
	if c.srv.ioTimeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.srv.ioTimeout))
	}
}

// readLine returns the next '\n'-terminated line (delimiter stripped,
// final unterminated line included), or an error when the connection is
// done or a line overflows the read buffer.
func (c *conn) readLine() (string, error) {
	b, err := c.r.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return "", errLineTooLong
		}
		if err == io.EOF && len(b) > 0 {
			return string(b), nil
		}
		return "", err
	}
	return string(b[:len(b)-1]), nil
}

// addWindowed buffers one windowed update, flushing at the writer's
// default batch size.
func (c *conn) addWindowed(item, weight int64) {
	c.winItems = append(c.winItems, item)
	c.winWeights = append(c.winWeights, weight)
	if len(c.winItems) >= freq.DefaultBatchSize {
		c.flushWindowed()
	}
}

// flushWindowed applies the buffered windowed updates under one lock
// acquisition. Weights were validated non-negative on ingest, so the
// batch cannot fail.
func (c *conn) flushWindowed() {
	if len(c.winItems) == 0 {
		return
	}
	_ = c.srv.win.UpdateWeightedBatch(c.winItems, c.winWeights)
	c.winItems = c.winItems[:0]
	c.winWeights = c.winWeights[:0]
}

func (s *Server) handle(nc net.Conn, st *connState) {
	defer nc.Close()
	writer, err := freq.NewWriter(s.sketch)
	if err != nil {
		return // unreachable: no options are passed
	}
	defer writer.Close()
	nw := bufio.NewWriter(nc)
	c := &conn{srv: s, nc: nc, st: st, r: bufio.NewReaderSize(nc, 64*1024), nw: nw, w: nw, writer: writer}
	if s.win != nil {
		defer c.flushWindowed()
	}
	for {
		c.armIdle()
		line, rerr := c.readLine()
		if rerr != nil {
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// busy marks a command in flight: Shutdown's idle-closer skips the
		// connection until the reply below has flushed.
		st.busy.Lock()
		c.armIO()
		quit, err := c.dispatch(line)
		if err != nil {
			// An ERR reply is exactly one line; joined errors (errors.Join
			// separates with '\n') must not smuggle extra lines into the
			// reply stream.
			fmt.Fprintf(c.w, "ERR %s\n", sanitizeLine(err.Error()))
		}
		ferr := c.nw.Flush()
		st.busy.Unlock()
		if ferr != nil || quit {
			return
		}
		if s.draining.Load() {
			// Graceful drain: the command in flight got its reply; exit
			// instead of reading the next one (the deferred writer close
			// flushes this connection's buffered ingest).
			return
		}
		if c.bin {
			// A successful HELLO BIN was just acknowledged in text; every
			// byte from here on is binary-framed.
			c.binaryLoop()
			return
		}
	}
}

// dispatch executes one protocol line, writing the response to the
// connection. Updates (U, UB) ride the buffered batch path; every other
// command flushes the connection's writer first, so a connection always
// reads its own writes.
func (c *conn) dispatch(line string) (quit bool, err error) {
	s := c.srv
	w := c.w
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	if cmd != "U" && cmd != "UB" {
		if err := c.writer.Flush(); err != nil {
			return false, err
		}
		if s.win != nil {
			c.flushWindowed()
		}
	}
	switch cmd {
	case "U":
		if len(args) != 2 {
			return false, errors.New("usage: U <item> <weight>")
		}
		item, err1 := strconv.ParseInt(args[0], 10, 64)
		weight, err2 := strconv.ParseInt(args[1], 10, 64)
		if err1 != nil || err2 != nil {
			return false, errors.New("bad integer")
		}
		if err := c.writer.Add(item, weight); err != nil {
			return false, err
		}
		if s.win != nil {
			c.addWindowed(item, weight)
		}
		s.statsMu.Lock()
		s.updates++
		s.statsMu.Unlock()
		fmt.Fprintln(w, "OK")
	case "UB":
		items, weights, q, err := c.readBatch(args, "UB <count>")
		if err != nil {
			return q, err
		}
		// Preserve per-connection ordering: buffered singles land before
		// the batch, and the batch is all-or-nothing.
		if err := c.writer.Flush(); err != nil {
			return false, err
		}
		if s.win != nil {
			c.flushWindowed()
		}
		if err := s.sketch.UpdateWeightedBatch(items, weights); err != nil {
			return false, err
		}
		if s.win != nil {
			// Validated by the all-time batch above; cannot fail.
			_ = s.win.UpdateWeightedBatch(items, weights)
		}
		s.statsMu.Lock()
		s.updates += int64(len(items))
		s.statsMu.Unlock()
		fmt.Fprintf(w, "OK %d\n", len(items))
	case "Q", "EST":
		return false, c.cmdEstimate(cmd, args, s.sketch)
	case "TOP", "TOPK":
		return false, c.cmdTopK(cmd, args, s.sketch)
	case "FI":
		return false, c.cmdFI(args, s.sketch)
	case "HH":
		return false, c.cmdHH(args, s.sketch)
	case "STATS":
		// One consistent reply shape regardless of configuration: the
		// optional subsystems report zero when absent. Clients parse the
		// leading fields positionally (Client.Stats) or the whole line
		// as key=value pairs (Client.StatsFull); both tolerate growth.
		slots := 0
		if s.win != nil {
			slots = s.win.Intervals()
		}
		partitions := 0
		if pc, ok := s.store.(interface{ PartitionCount() int }); ok {
			partitions = pc.PartitionCount()
		}
		var ts tenant.Stats
		if s.tenants != nil {
			ts = s.tenants.Stats()
		}
		fmt.Fprintf(w, "STATS n=%d err=%d shards=%d slots=%d partitions=%d tenants=%d tenants_max=%d tenant_evictions=%d\n",
			s.sketch.StreamWeight(), s.sketch.MaximumError(), s.sketch.NumShards(),
			slots, partitions, ts.Active, ts.Max, ts.Evictions)
	case "SNAPSHOT", "SNAP":
		return false, c.cmdSnap(s.sketch)
	case "WIN":
		return c.dispatchWindow(s.win, args)
	case "RANGE":
		if s.store == nil {
			return false, ErrNoStore
		}
		return c.dispatchRange(args, s.store.QueryInto)
	case "TENANT":
		return c.dispatchTenant(args)
	case "ROTATE":
		if s.win == nil {
			return false, ErrNoWindow
		}
		s.win.Rotate()
		fmt.Fprintf(w, "OK %d\n", s.win.Rotations())
	case "RESET":
		// Both summaries clear together: a reset server must not keep
		// answering window-scoped queries from pre-reset data.
		s.sketch.Reset()
		if s.win != nil {
			s.win.Reset()
		}
		fmt.Fprintln(w, "OK")
	case "HELLO":
		// Framing negotiation. "HELLO BIN <v>" (v in 1..binaryVersionMax)
		// upgrades the connection to the length-prefixed binary framing
		// at that version (acknowledged in text — the switch happens
		// after this reply flushes); clients offer their best version and
		// descend on ERR, so an old server declining BIN 2 falls back to
		// BIN 1 cleanly. "HELLO TEXT 1" explicitly confirms the default.
		// Anything else is a sanitized one-line ERR and the connection
		// stays in text framing, fully synchronized: HELLO is a single
		// line, so there is nothing in flight to drain.
		if c.bin {
			// Reached via a CMD frame: the framing is already fixed for
			// the connection's lifetime and cannot be renegotiated.
			return false, errors.New("framing already negotiated")
		}
		if len(args) != 2 {
			return false, errors.New("usage: HELLO <BIN|TEXT> <version>")
		}
		proto := strings.ToUpper(args[0])
		ver, verr := strconv.Atoi(args[1])
		if verr != nil {
			return false, errors.New("usage: HELLO <BIN|TEXT> <version>")
		}
		switch {
		case proto == "BIN" && ver >= binaryVersionMin && ver <= binaryVersionMax:
			c.bin = true
			c.binVer = ver
			fmt.Fprintf(w, "HELLO BIN %d\n", ver)
		case proto == "TEXT" && ver == 1:
			fmt.Fprintln(w, "HELLO TEXT 1")
		default:
			return false, fmt.Errorf("unsupported protocol %s %d (want BIN %d..%d or TEXT 1)",
				proto, ver, binaryVersionMin, binaryVersionMax)
		}
	case "QUIT":
		fmt.Fprintln(w, "BYE")
		return true, nil
	default:
		return false, fmt.Errorf("unknown command %q", cmd)
	}
	return false, nil
}

// readBatch consumes one UB-style batch — the "<count>" argument plus
// that many "<item> <weight>" pair lines — shared by the global UB and
// the TENANT-scoped UB. usage names the command shape for error text.
// The desync discipline is the load-bearing part: an announced count
// within the cap is always fully consumed (drained past errors) so the
// connection stays synchronized, while an over-cap count — unbounded
// work — replies once and drops the connection (quit=true).
func (c *conn) readBatch(args []string, usage string) (items, weights []int64, quit bool, err error) {
	if len(args) < 1 {
		return nil, nil, false, fmt.Errorf("usage: %s", usage)
	}
	n, aerr := strconv.Atoi(args[0])
	if aerr != nil {
		// The announced batch length is unknowable; nothing can be
		// drained. (A real client never sends this: the count is the
		// one field it computes itself.)
		return nil, nil, false, fmt.Errorf("usage: %s", usage)
	}
	if len(args) != 1 || n < 1 || n > MaxWireBatch {
		if n > MaxWireBatch {
			// The announced count exceeds the protocol cap, so the
			// pair lines in flight cannot be consumed within bounded
			// work (the count is a liar's number); reply once and drop
			// the connection instead of reinterpreting the pairs as
			// commands — the pre-fix behaviour, whose per-line ERR
			// flood desynchronized the reply stream and could deadlock
			// against a client that writes the whole batch first.
			return nil, nil, true, fmt.Errorf("batch count must be 1..%d", MaxWireBatch)
		}
		// Invalid, but the count is known and within the cap — and the
		// client has already committed that many pair lines to the
		// wire. Consume them all before replying, keeping the
		// connection synchronized and usable.
		if !c.drainLines(n) {
			return nil, nil, true, errors.New("connection closed mid-batch")
		}
		if len(args) != 1 {
			return nil, nil, false, fmt.Errorf("usage: %s", usage)
		}
		return nil, nil, false, fmt.Errorf("batch count must be 1..%d", MaxWireBatch)
	}
	items = make([]int64, 0, n)
	weights = make([]int64, 0, n)
	var parseErr error
	for i := 0; i < n; i++ {
		// Consume the whole block even past a bad line, so one
		// malformed pair does not desynchronize the protocol. The IO
		// deadline re-arms per line: a peer making progress is never
		// cut off mid-block, a stalled one is.
		c.armIO()
		pairLine, rerr := c.readLine()
		if rerr != nil {
			return nil, nil, true, errors.New("connection closed mid-batch")
		}
		f := strings.Fields(pairLine)
		if parseErr != nil {
			continue
		}
		if len(f) != 2 {
			parseErr = fmt.Errorf("batch line %d: want \"<item> <weight>\"", i+1)
			continue
		}
		item, err1 := strconv.ParseInt(f[0], 10, 64)
		weight, err2 := strconv.ParseInt(f[1], 10, 64)
		if err1 != nil || err2 != nil {
			parseErr = fmt.Errorf("batch line %d: bad integer", i+1)
			continue
		}
		items = append(items, item)
		weights = append(weights, weight)
	}
	if parseErr != nil {
		return nil, nil, false, parseErr
	}
	return items, weights, false, nil
}

// drainLines consumes up to n protocol lines without interpreting or
// answering them — the resynchronization step after a rejected batch
// whose pair lines are already in flight. It reports whether the
// connection stayed alive.
func (c *conn) drainLines(n int) bool {
	for i := 0; i < n; i++ {
		c.armIO()
		if _, err := c.readLine(); err != nil {
			return false
		}
	}
	return true
}

// dispatchWindow executes one WIN-scoped query: the read commands
// (EST/Q, TOPK/TOP, FI, SNAP/SNAPSHOT) against the merged view of the
// last w intervals of win — the global sliding window or a tenant's
// twin — with replies shaped exactly like their all-time counterparts.
func (c *conn) dispatchWindow(win *freq.ConcurrentWindowed[int64], args []string) (quit bool, err error) {
	s := c.srv
	w := c.w
	if win == nil {
		return false, ErrNoWindow
	}
	if len(args) < 2 {
		return false, errors.New("usage: WIN <w> <EST|TOPK|FI|SNAP> ...")
	}
	width, err := strconv.Atoi(args[0])
	if err != nil || width < 1 {
		return false, errors.New("bad window width")
	}
	sub := strings.ToUpper(args[1])
	rest := args[2:]
	switch sub {
	case "Q", "EST":
		if len(rest) != 1 {
			return false, fmt.Errorf("usage: WIN <w> %s <item>", sub)
		}
		item, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return false, errors.New("bad integer")
		}
		s.statsMu.Lock()
		s.queries++
		s.statsMu.Unlock()
		est, lb, ub := win.EstimateLast(width, item)
		fmt.Fprintf(w, "EST %d %d %d\n", est, lb, ub)
	case "TOP", "TOPK":
		if len(rest) != 1 {
			return false, fmt.Errorf("usage: WIN <w> %s <n>", sub)
		}
		n, err := strconv.Atoi(rest[0])
		if err != nil || n < 1 {
			return false, errors.New("bad count")
		}
		writeRows(w, win.TopKLast(width, n))
	case "FI":
		if len(rest) != 2 {
			return false, errors.New("usage: WIN <w> FI <et> <threshold>")
		}
		et, err := parseErrorType(rest[0])
		if err != nil {
			return false, err
		}
		threshold, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return false, errors.New("bad threshold")
		}
		writeRows(w, win.FrequentItemsAboveThresholdLast(width, threshold, et))
	case "SNAPSHOT", "SNAP":
		// A window-scoped snapshot is the merged view of the last w
		// intervals in the ordinary single-sketch wire format — the
		// same blob shape as SNAP, so the client decode path is shared.
		buf, snapErr := win.AppendBinaryLast(width, c.snapBuf[:0])
		c.snapBuf = buf
		if snapErr != nil {
			return false, snapErr
		}
		fmt.Fprintf(w, "SNAP %d\n", len(c.snapBuf))
		if _, err := w.Write(c.snapBuf); err != nil {
			return false, err
		}
	default:
		return false, fmt.Errorf("unknown window command %q", sub)
	}
	return false, nil
}

// dispatchRange executes one RANGE-scoped query: the read commands
// (EST/Q, TOPK/TOP, FI, SNAP/SNAPSHOT) against the merged summary of
// every persisted slot overlapping [from, to), with replies shaped
// exactly like their all-time and WIN counterparts. query is the
// history to merge from — the global store's QueryInto or a
// tenant-scoped closure over the tenant store. The merge reuses the
// connection's accumulator, so polling a stable range costs no
// allocation.
func (c *conn) dispatchRange(args []string, query func(dst *freq.Sketch[int64], from, to time.Time) (*freq.Sketch[int64], error)) (quit bool, err error) {
	s := c.srv
	w := c.w
	if len(args) < 3 {
		return false, errors.New("usage: RANGE <from> <to> <EST|TOPK|FI|SNAP> ...")
	}
	from, err := parseTime(args[0])
	if err != nil {
		return false, fmt.Errorf("bad from: %w", err)
	}
	to, err := parseTime(args[1])
	if err != nil {
		return false, fmt.Errorf("bad to: %w", err)
	}
	if !to.After(from) {
		return false, errors.New("empty range: to must be after from")
	}
	sk, err := query(c.rangeSk, from, to)
	if sk != nil {
		c.rangeSk = sk
	}
	if err != nil {
		return false, err
	}
	v := freq.NewView(sk)
	sub := strings.ToUpper(args[2])
	rest := args[3:]
	switch sub {
	case "Q", "EST":
		if len(rest) != 1 {
			return false, fmt.Errorf("usage: RANGE <from> <to> %s <item>", sub)
		}
		item, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return false, errors.New("bad integer")
		}
		s.statsMu.Lock()
		s.queries++
		s.statsMu.Unlock()
		fmt.Fprintf(w, "EST %d %d %d\n", v.Estimate(item), v.LowerBound(item), v.UpperBound(item))
	case "TOP", "TOPK":
		if len(rest) != 1 {
			return false, fmt.Errorf("usage: RANGE <from> <to> %s <n>", sub)
		}
		n, err := strconv.Atoi(rest[0])
		if err != nil || n < 1 {
			return false, errors.New("bad count")
		}
		writeRows(w, v.TopK(n))
	case "FI":
		if len(rest) != 2 {
			return false, errors.New("usage: RANGE <from> <to> FI <et> <threshold>")
		}
		et, err := parseErrorType(rest[0])
		if err != nil {
			return false, err
		}
		threshold, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return false, errors.New("bad threshold")
		}
		writeRows(w, v.FrequentItemsAboveThreshold(threshold, et))
	case "SNAPSHOT", "SNAP":
		// A range snapshot is the merged historical summary in the
		// ordinary single-sketch wire format — the same blob shape as
		// SNAP and WIN SNAP, so the client decode path is shared.
		buf, snapErr := v.AppendBinary(c.snapBuf[:0])
		c.snapBuf = buf
		if snapErr != nil {
			return false, snapErr
		}
		fmt.Fprintf(w, "SNAP %d\n", len(c.snapBuf))
		if _, err := w.Write(c.snapBuf); err != nil {
			return false, err
		}
	default:
		return false, fmt.Errorf("unknown range command %q", sub)
	}
	return false, nil
}

// cmdEstimate serves EST/Q against sk — the global summary or an
// acquired tenant's. cmd names the command for usage text.
func (c *conn) cmdEstimate(cmd string, args []string, sk *freq.Concurrent[int64]) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s <item>", cmd)
	}
	item, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return errors.New("bad integer")
	}
	s := c.srv
	s.statsMu.Lock()
	s.queries++
	s.statsMu.Unlock()
	fmt.Fprintf(c.w, "EST %d %d %d\n", sk.Estimate(item), sk.LowerBound(item), sk.UpperBound(item))
	return nil
}

// cmdTopK serves TOPK/TOP against sk.
func (c *conn) cmdTopK(cmd string, args []string, sk *freq.Concurrent[int64]) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s <n>", cmd)
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 1 {
		return errors.New("bad count")
	}
	writeRows(c.w, sk.TopK(n))
	return nil
}

// cmdFI serves FI against sk.
func (c *conn) cmdFI(args []string, sk *freq.Concurrent[int64]) error {
	if len(args) != 2 {
		return errors.New("usage: FI <et> <threshold>")
	}
	et, err := parseErrorType(args[0])
	if err != nil {
		return err
	}
	threshold, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return errors.New("bad threshold")
	}
	writeRows(c.w, sk.FrequentItemsAboveThreshold(threshold, et))
	return nil
}

// cmdHH serves HH against sk.
func (c *conn) cmdHH(args []string, sk *freq.Concurrent[int64]) error {
	if len(args) != 1 {
		return errors.New("usage: HH <phi-millis>")
	}
	millis, err := strconv.Atoi(args[0])
	if err != nil || millis < 0 || millis > 1000 {
		return errors.New("phi-millis must be 0..1000")
	}
	threshold := int64(float64(millis) / 1000 * float64(sk.StreamWeight()))
	writeRows(c.w, sk.FrequentItemsAboveThreshold(threshold, freq.NoFalseNegatives))
	return nil
}

// cmdSnap serves SNAP/SNAPSHOT against sk from its epoch-cached merged
// view: repeated SNAPs with no interleaved writes re-merge nothing, and
// the encoding reuses the connection's buffer.
func (c *conn) cmdSnap(sk *freq.Concurrent[int64]) error {
	v, err := sk.View()
	if err != nil {
		return err
	}
	c.snapBuf, err = v.AppendBinary(c.snapBuf[:0])
	if err != nil {
		return err
	}
	fmt.Fprintf(c.w, "SNAP %d\n", len(c.snapBuf))
	if _, err := c.w.Write(c.snapBuf); err != nil {
		return err
	}
	return nil
}

// dispatchTenant executes one TENANT-scoped command: the same command
// surface as the global dispatcher (U, UB, EST/Q, TOPK/TOP, FI, HH,
// SNAP, STATS, WIN, RANGE, ROTATE, RESET — plus EVICT), run against the
// tenant's own summary pair from the registry. The tenant handle is
// acquired for exactly the duration of the command, so an eviction can
// never recycle the tables out from under a command in flight.
func (c *conn) dispatchTenant(args []string) (quit bool, err error) {
	s := c.srv
	if s.tenants == nil {
		return false, ErrNoTenants
	}
	if len(args) < 2 {
		return false, errors.New("usage: TENANT <id> <command> ...")
	}
	id := args[0]
	sub := strings.ToUpper(args[1])
	rest := args[2:]
	w := c.w
	switch sub {
	case "EVICT":
		// EVICT must not acquire the handle it is trying to retire: a
		// held handle is exactly what Evict rejects as busy.
		if len(rest) != 0 {
			return false, errors.New("usage: TENANT <id> EVICT")
		}
		if err := s.tenants.Evict(id); err != nil {
			return false, err
		}
		fmt.Fprintln(w, "OK")
		return false, nil
	case "UB":
		if c.bin {
			// Inside a CMD frame the pair lines would have to be read
			// from the binary stream as text — a framing violation. The
			// binary tenant batch path is a v2 PAIRS frame.
			return false, errors.New("TENANT UB is text-framing only (binary clients send v2 PAIRS frames)")
		}
		// The client committed the pair lines to the wire with the
		// header, so consume the batch before acquiring: a failed
		// acquire (bad id, full registry) must still leave the
		// connection synchronized.
		items, weights, q, berr := c.readBatch(rest, "TENANT <id> UB <count>")
		if berr != nil {
			return q, berr
		}
		ten, aerr := s.tenants.Acquire(id)
		if aerr != nil {
			return false, aerr
		}
		defer ten.Release()
		if berr := ten.UpdateWeightedBatch(items, weights); berr != nil {
			return false, berr
		}
		s.statsMu.Lock()
		s.updates += int64(len(items))
		s.statsMu.Unlock()
		fmt.Fprintf(w, "OK %d\n", len(items))
		return false, nil
	}
	ten, err := s.tenants.Acquire(id)
	if err != nil {
		return false, err
	}
	defer ten.Release()
	switch sub {
	case "U":
		if len(rest) != 2 {
			return false, errors.New("usage: TENANT <id> U <item> <weight>")
		}
		item, err1 := strconv.ParseInt(rest[0], 10, 64)
		weight, err2 := strconv.ParseInt(rest[1], 10, 64)
		if err1 != nil || err2 != nil {
			return false, errors.New("bad integer")
		}
		if err := ten.Update(item, weight); err != nil {
			return false, err
		}
		s.statsMu.Lock()
		s.updates++
		s.statsMu.Unlock()
		fmt.Fprintln(w, "OK")
	case "Q", "EST":
		return false, c.cmdEstimate(sub, rest, ten.Sketch())
	case "TOP", "TOPK":
		return false, c.cmdTopK(sub, rest, ten.Sketch())
	case "FI":
		return false, c.cmdFI(rest, ten.Sketch())
	case "HH":
		return false, c.cmdHH(rest, ten.Sketch())
	case "SNAPSHOT", "SNAP":
		return false, c.cmdSnap(ten.Sketch())
	case "STATS":
		// The tenant-scoped reply leads with the same fields as the
		// global one, so the client's positional prefix parse is shared.
		slots := 0
		if win := ten.Windowed(); win != nil {
			slots = win.Intervals()
		}
		fmt.Fprintf(w, "STATS n=%d err=%d shards=%d slots=%d\n",
			ten.Sketch().StreamWeight(), ten.Sketch().MaximumError(), ten.Sketch().NumShards(), slots)
	case "WIN":
		return c.dispatchWindow(ten.Windowed(), rest)
	case "RANGE":
		if s.tenantStore == nil {
			return false, ErrNoTenantStore
		}
		return c.dispatchRange(rest, func(dst *freq.Sketch[int64], from, to time.Time) (*freq.Sketch[int64], error) {
			return s.tenantStore.QueryTenantInto(id, dst, from, to)
		})
	case "ROTATE":
		win := ten.Windowed()
		if win == nil {
			return false, ErrNoWindow
		}
		win.Rotate()
		fmt.Fprintf(w, "OK %d\n", win.Rotations())
	case "RESET":
		ten.Reset()
		fmt.Fprintln(w, "OK")
	default:
		return false, fmt.Errorf("unknown tenant command %q", sub)
	}
	return false, nil
}

// parseTime reads a RANGE bound: integer unix seconds or an RFC 3339
// timestamp ("2026-08-08T12:00:00Z").
func parseTime(s string) (time.Time, error) {
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(secs, 0), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, errors.New("want unix seconds or RFC3339")
	}
	return t, nil
}

// parseErrorType reads the FI semantics field: the numeric freq values
// (0, 1) or the mnemonic names, case-insensitively.
func parseErrorType(s string) (freq.ErrorType, error) {
	switch strings.ToUpper(s) {
	case "0", "NFP", "NOFALSEPOSITIVES":
		return freq.NoFalsePositives, nil
	case "1", "NFN", "NOFALSENEGATIVES":
		return freq.NoFalseNegatives, nil
	}
	return 0, fmt.Errorf("bad error type %q (want 0/NFP or 1/NFN)", s)
}

// sanitizeLine collapses a potentially multi-line message (errors.Join
// separates causes with '\n') into the single line an ERR reply must
// be: an embedded newline would desync the client's line-oriented
// reader, which is exactly the bug class the wirereply analyzer exists
// to keep extinct. Every string that reaches an ERR reply goes through
// here or errFrame.
//
//freq:sanitizer
func sanitizeLine(s string) string {
	return strings.ReplaceAll(s, "\n", "; ")
}

func writeRows(w io.Writer, rows []freq.Row[int64]) {
	fmt.Fprintf(w, "MULTI %d\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(w, "ITEM %d %d %d %d\n", r.Item, r.Estimate, r.LowerBound, r.UpperBound)
	}
}

// Counters returns the number of updates and queries served (diagnostics).
func (s *Server) Counters() (updates, queries int64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.updates, s.queries
}
