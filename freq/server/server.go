// Package server provides a line-protocol TCP service around the
// concurrent frequent-items sketch: the deployment shape of the §1.2
// motivation, where collectors stream weighted updates (bytes per source,
// watch time per user) and operators issue point and heavy-hitter queries
// against the live summary. Everything is stdlib net + the public freq
// API; one goroutine per connection, queries and updates freely
// interleaved.
//
// Protocol (one request per line, space separated; responses are single
// lines except MULTI blocks):
//
//	U <item> <weight>     add weight to item        -> "OK" (or nothing in pipelined mode)
//	Q <item>              point query               -> "EST <estimate> <lower> <upper>"
//	TOP <n>               top n items               -> "MULTI <k>" then k lines "ITEM <item> <est> <lb> <ub>"
//	HH <phi-millis>       items above phi/1000 * N  -> MULTI block as TOP
//	STATS                 summary state             -> "STATS n=<N> err=<offset> shards=<s>"
//	SNAPSHOT              serialized summary        -> "SNAP <n>" then n bytes of sketch wire format
//	RESET                 clear the summary         -> "OK"
//	QUIT                  close the connection
//
// Malformed requests get "ERR <reason>" and the connection stays usable.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/freq"
)

// Config parameterizes a Server.
type Config struct {
	// MaxCounters is the total counter budget (default 24576).
	MaxCounters int
	// Shards is the concurrency fan-out (default 8).
	Shards int
}

// Server owns the live summary and serves the line protocol.
type Server struct {
	sketch *freq.Concurrent[int64]

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
	updates int64
	queries int64
	statsMu sync.Mutex
}

// New returns a server with a fresh summary.
func New(cfg Config) (*Server, error) {
	if cfg.MaxCounters == 0 {
		cfg.MaxCounters = 24576
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	sk, err := freq.NewConcurrent[int64](cfg.MaxCounters, freq.WithShards(cfg.Shards))
	if err != nil {
		return nil, err
	}
	return &Server{
		sketch: sk,
		conns:  map[net.Conn]struct{}{},
	}, nil
}

// Sketch exposes the underlying summary (for embedding and tests).
func (s *Server) Sketch() *freq.Concurrent[int64] { return s.sketch }

// Serve accepts connections on ln until Close is called. It returns
// net.ErrClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 64*1024), 64*1024)
	w := bufio.NewWriter(conn)
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		quit, err := s.dispatch(w, line)
		if err != nil {
			fmt.Fprintf(w, "ERR %s\n", err)
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// dispatch executes one protocol line, writing the response to w.
func (s *Server) dispatch(w io.Writer, line string) (quit bool, err error) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "U":
		if len(args) != 2 {
			return false, errors.New("usage: U <item> <weight>")
		}
		item, err1 := strconv.ParseInt(args[0], 10, 64)
		weight, err2 := strconv.ParseInt(args[1], 10, 64)
		if err1 != nil || err2 != nil {
			return false, errors.New("bad integer")
		}
		if err := s.sketch.Update(item, weight); err != nil {
			return false, err
		}
		s.statsMu.Lock()
		s.updates++
		s.statsMu.Unlock()
		fmt.Fprintln(w, "OK")
	case "Q":
		if len(args) != 1 {
			return false, errors.New("usage: Q <item>")
		}
		item, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return false, errors.New("bad integer")
		}
		s.statsMu.Lock()
		s.queries++
		s.statsMu.Unlock()
		fmt.Fprintf(w, "EST %d %d %d\n",
			s.sketch.Estimate(item), s.sketch.LowerBound(item), s.sketch.UpperBound(item))
	case "TOP":
		if len(args) != 1 {
			return false, errors.New("usage: TOP <n>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return false, errors.New("bad count")
		}
		writeRows(w, s.sketch.TopK(n))
	case "HH":
		if len(args) != 1 {
			return false, errors.New("usage: HH <phi-millis>")
		}
		millis, err := strconv.Atoi(args[0])
		if err != nil || millis < 0 || millis > 1000 {
			return false, errors.New("phi-millis must be 0..1000")
		}
		threshold := int64(float64(millis) / 1000 * float64(s.sketch.StreamWeight()))
		writeRows(w, s.sketch.FrequentItemsAboveThreshold(threshold, freq.NoFalseNegatives))
	case "STATS":
		fmt.Fprintf(w, "STATS n=%d err=%d shards=%d\n",
			s.sketch.StreamWeight(), s.sketch.MaximumError(), s.sketch.NumShards())
	case "SNAPSHOT":
		blob, err := s.sketch.MarshalBinary()
		if err != nil {
			return false, err
		}
		fmt.Fprintf(w, "SNAP %d\n", len(blob))
		if _, err := w.Write(blob); err != nil {
			return false, err
		}
	case "RESET":
		s.sketch.Reset()
		fmt.Fprintln(w, "OK")
	case "QUIT":
		fmt.Fprintln(w, "BYE")
		return true, nil
	default:
		return false, fmt.Errorf("unknown command %q", cmd)
	}
	return false, nil
}

func writeRows(w io.Writer, rows []freq.Row[int64]) {
	fmt.Fprintf(w, "MULTI %d\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(w, "ITEM %d %d %d %d\n", r.Item, r.Estimate, r.LowerBound, r.UpperBound)
	}
}

// Counters returns the number of updates and queries served (diagnostics).
func (s *Server) Counters() (updates, queries int64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.updates, s.queries
}
