// Windowed ring tests: rotation/expiry semantics, the window-scoped ==
// fresh-sketch property, alloc-free rotation, epoch-cached views, ring
// serialization, and the concurrent wrapper (including the race test the
// CI -race run exercises).
package freq

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// collectRows returns every row of q ordered by descending estimate
// (ties by item) — the deterministic full listing used for equality
// checks.
func collectRows[T comparable](q Queryable[T]) []Row[T] {
	return From[T](q).Collect()
}

func TestWindowedConstruction(t *testing.T) {
	if _, err := NewWindowed[int64](64, 0); !errors.Is(err, ErrBadIntervals) {
		t.Fatalf("intervals=0: got %v, want ErrBadIntervals", err)
	}
	if _, err := NewWindowed[int64](64, -3); !errors.Is(err, ErrBadIntervals) {
		t.Fatalf("intervals=-3: got %v, want ErrBadIntervals", err)
	}
	if _, err := NewWindowed[int64](0, 4); !errors.Is(err, ErrTooFewCounters) {
		t.Fatalf("k=0: got %v, want ErrTooFewCounters", err)
	}
	wd, err := NewWindowed[int64](128, 6)
	if err != nil {
		t.Fatal(err)
	}
	if wd.Intervals() != 6 || wd.IntervalCounters() != 128 || wd.Rotations() != 0 {
		t.Fatalf("accessors: got (%d, %d, %d)", wd.Intervals(), wd.IntervalCounters(), wd.Rotations())
	}
}

func TestWindowedPinnedSeedDistinctPerSlot(t *testing.T) {
	wd, err := NewWindowed[int64](64, 8, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for i, s := range wd.slots {
		seen[s.fast.Seed()]++
		if s.fast.Seed() == 0 {
			t.Fatalf("slot %d: zero derived seed", i)
		}
	}
	if len(seen) != len(wd.slots) {
		t.Fatalf("pinned seed shared between slots: %d distinct of %d", len(seen), len(wd.slots))
	}
	// Reproducibility: the same pinned seed derives the same slot seeds.
	wd2, err := NewWindowed[int64](64, 8, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wd.slots {
		if wd.slots[i].fast.Seed() != wd2.slots[i].fast.Seed() {
			t.Fatalf("slot %d: pinned seeds not reproducible", i)
		}
	}
}

func TestWindowedExpiry(t *testing.T) {
	const n = 4
	wd, err := NewWindowed[int64](64, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Update(7, 100); err != nil {
		t.Fatal(err)
	}
	// The item stays in scope for the n-1 rotations after its interval.
	for r := 0; r < n-1; r++ {
		wd.Rotate()
		if got := wd.Estimate(7); got != 100 {
			t.Fatalf("after %d rotations: estimate=%d, want 100", r+1, got)
		}
	}
	// The n-th rotation recycles its slot: fully out of scope.
	wd.Rotate()
	if got := wd.Estimate(7); got != 0 {
		t.Fatalf("after %d rotations: estimate=%d, want 0", n, got)
	}
	if got := wd.StreamWeight(); got != 0 {
		t.Fatalf("expired weight still counted: N=%d", got)
	}
	if got := wd.Rotations(); got != n {
		t.Fatalf("rotations=%d, want %d", got, n)
	}
}

func TestWindowedWriteValidation(t *testing.T) {
	wd, err := NewWindowed[int64](64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Update(1, -5); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("negative weight: got %v", err)
	}
	if err := wd.UpdateWeightedBatch([]int64{1, 2}, []int64{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length mismatch: got %v", err)
	}
	if err := wd.UpdateWeightedBatch([]int64{1, 2}, []int64{1, -1}); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("negative batch weight: got %v", err)
	}
	if got := wd.StreamWeight(); got != 0 {
		t.Fatalf("rejected updates leaked weight: N=%d", got)
	}
}

// TestWindowedScopedEqualsFreshProperty is the acceptance property: a
// window-scoped query over the last w intervals returns byte-identical
// rows to a fresh sketch fed exactly those intervals' updates. The
// streams keep every interval within its budget, so neither side ever
// decrements and the comparison is exact (estimates, bounds, and
// ordering all included).
func TestWindowedScopedEqualsFreshProperty(t *testing.T) {
	const (
		k         = 256
		intervals = 4
		rounds    = 11 // ~3 full wraps of the ring
	)
	rng := rand.New(rand.NewSource(0x57a7))
	wd, err := NewWindowed[int64](k, intervals)
	if err != nil {
		t.Fatal(err)
	}
	// history[r] holds interval r's stream (items and weights).
	type stream struct {
		items   []int64
		weights []int64
	}
	var history []stream

	check := func() {
		live := len(history) // intervals seen so far, newest last
		for w := 1; w <= intervals; w++ {
			fresh, err := New[int64](k * intervals)
			if err != nil {
				t.Fatal(err)
			}
			for i := max(0, live-w); i < live; i++ {
				if err := fresh.UpdateWeightedBatch(history[i].items, history[i].weights); err != nil {
					t.Fatal(err)
				}
			}
			got := collectRows[int64](wd.Last(w))
			want := collectRows[int64](fresh)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d width %d: scoped rows diverge from fresh sketch\n got %v\nwant %v",
					live, w, got, want)
			}
		}
		// The Queryable surface of the ring itself answers as the
		// full-width view.
		if got, want := collectRows[int64](wd), collectRows[int64](wd.Last(intervals)); !reflect.DeepEqual(got, want) {
			t.Fatalf("full-window rows != Last(%d) rows", intervals)
		}
	}

	for r := 0; r < rounds; r++ {
		if r > 0 {
			wd.Rotate()
			if len(history) == intervals {
				history = history[1:] // the oldest interval left the window
			}
		}
		// One interval's traffic: ~40 distinct items, some repeating, in
		// randomized order — well inside the per-interval budget.
		var st stream
		for j := 0; j < 60; j++ {
			item := int64(r*1000 + rng.Intn(40))
			st.items = append(st.items, item)
			st.weights = append(st.weights, int64(rng.Intn(500)+1))
		}
		if err := wd.UpdateWeightedBatch(st.items, st.weights); err != nil {
			t.Fatal(err)
		}
		history = append(history, st)
		check()
	}
}

// TestWindowedTopKMatchesFresh pins the acceptance criterion's exact
// shape: a window-scoped TopK over the last N intervals is
// byte-identical to a fresh sketch fed the same intervals' stream.
func TestWindowedTopKMatchesFresh(t *testing.T) {
	const k, intervals = 128, 3
	wd, _ := NewWindowed[uint64](k, intervals)
	fresh, _ := New[uint64](k * intervals)
	// Interval 0 ages out; intervals 1..3 stay in scope.
	stale := []uint64{9, 9, 9, 8}
	wd.UpdateBatch(stale)
	for iv := 1; iv <= intervals; iv++ {
		wd.Rotate()
		var items []uint64
		var weights []int64
		for j := 0; j < 30; j++ {
			items = append(items, uint64(iv*100+j%17))
			weights = append(weights, int64(iv*j+1))
		}
		if err := wd.UpdateWeightedBatch(items, weights); err != nil {
			t.Fatal(err)
		}
		if err := fresh.UpdateWeightedBatch(items, weights); err != nil {
			t.Fatal(err)
		}
	}
	got := wd.Last(intervals).TopK(25)
	want := fresh.TopK(25)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("windowed TopK diverges from fresh sketch\n got %v\nwant %v", got, want)
	}
	if wd.Estimate(9) != 0 {
		t.Fatal("expired interval leaked into the window")
	}
}

func TestWindowedRotateNoAllocsAfterWarmup(t *testing.T) {
	const k, intervals = 512, 8
	wd, err := NewWindowed[uint64](k, intervals)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the ring: every slot sees traffic (growing its table), the
	// window wraps fully, and a query builds the merged view once.
	items := make([]uint64, 256)
	for i := range items {
		items[i] = uint64(i * 31)
	}
	for r := 0; r < 2*intervals; r++ {
		wd.UpdateBatch(items)
		wd.Rotate()
	}
	_ = wd.TopK(4)
	if allocs := testing.AllocsPerRun(100, wd.Rotate); allocs != 0 {
		t.Fatalf("Rotate allocates after warm-up: %v allocs/op", allocs)
	}
}

func TestWindowedViewCache(t *testing.T) {
	wd, err := NewWindowed[int64](64, 4)
	if err != nil {
		t.Fatal(err)
	}
	wd.UpdateOne(1)
	_ = wd.TopK(2)
	base := wd.ViewMerges()
	_ = wd.TopK(2)
	_ = wd.Estimate(1)
	_ = collectRows[int64](wd)
	if got := wd.ViewMerges(); got != base {
		t.Fatalf("repeated full-window reads re-merged: %d -> %d", base, got)
	}
	wd.UpdateOne(2)
	_ = wd.TopK(2)
	if got := wd.ViewMerges(); got == base {
		t.Fatal("write did not invalidate the cached view")
	}
	base = wd.ViewMerges()
	wd.Rotate()
	_ = wd.TopK(2)
	if got := wd.ViewMerges(); got == base {
		t.Fatal("rotation did not invalidate the cached view")
	}
	// Width-scoped reads share the cache per width.
	_ = wd.Last(2).TopK(2)
	base = wd.ViewMerges()
	_ = wd.Last(2).TopK(2)
	if got := wd.ViewMerges(); got != base {
		t.Fatalf("repeated Last(2) reads re-merged: %d -> %d", base, got)
	}
}

func TestWindowedSerializeRoundTrip(t *testing.T) {
	wd, err := NewWindowed[int64](64, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		for j := int64(0); j < 20; j++ {
			if err := wd.Update(int64(r)*100+j, j+1); err != nil {
				t.Fatal(err)
			}
		}
		if r < 4 {
			wd.Rotate()
		}
	}
	blob, err := wd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Decode into a differently-shaped receiver: geometry comes from the
	// blob.
	got, err := NewWindowed[int64](6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got.Intervals() != wd.Intervals() || got.Rotations() != wd.Rotations() {
		t.Fatalf("geometry: got (%d, %d), want (%d, %d)",
			got.Intervals(), got.Rotations(), wd.Intervals(), wd.Rotations())
	}
	for w := 1; w <= wd.Intervals(); w++ {
		a, b := collectRows[int64](got.Last(w)), collectRows[int64](wd.Last(w))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("width %d rows diverge after round trip", w)
		}
	}
	// The decoded ring keeps rotating and ingesting.
	got.Rotate()
	wd.Rotate()
	got.UpdateOne(424242)
	wd.UpdateOne(424242)
	if !reflect.DeepEqual(collectRows[int64](got), collectRows[int64](wd)) {
		t.Fatal("rings diverge after post-decode writes")
	}
}

func TestWindowedUnmarshalRejectsCorrupt(t *testing.T) {
	wd, _ := NewWindowed[int64](64, 2)
	wd.UpdateOne(1)
	before := collectRows[int64](wd)
	blob, err := wd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte("XXXX"), blob[4:]...),
		"truncated": blob[:len(blob)-3],
		"trailing":  append(append([]byte{}, blob...), 0xFF),
	}
	for name, data := range cases {
		if err := wd.UnmarshalBinary(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", name, err)
		}
		if got := collectRows[int64](wd); !reflect.DeepEqual(got, before) {
			t.Fatalf("%s: rejected decode mutated the receiver", name)
		}
	}
}

// TestWindowedGenericBackend exercises the map-backed fallback: the ring
// works for any comparable item type, with the same expiry semantics.
func TestWindowedGenericBackend(t *testing.T) {
	wd, err := NewWindowed[string](64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Update("alpha", 10); err != nil {
		t.Fatal(err)
	}
	wd.Rotate()
	if err := wd.Update("beta", 5); err != nil {
		t.Fatal(err)
	}
	if wd.Estimate("alpha") != 10 || wd.Estimate("beta") != 5 {
		t.Fatal("window estimates wrong on generic backend")
	}
	rows := wd.TopK(2)
	if len(rows) != 2 || rows[0].Item != "alpha" {
		t.Fatalf("TopK: %v", rows)
	}
	wd.Rotate()
	if wd.Estimate("alpha") != 0 {
		t.Fatal("expired item survived rotation on generic backend")
	}
	if wd.Estimate("beta") != 5 {
		t.Fatal("in-scope item lost on generic backend")
	}
}

func TestConcurrentWindowedBasics(t *testing.T) {
	cw, err := NewConcurrentWindowed[int64](128, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Update(1, 10); err != nil {
		t.Fatal(err)
	}
	cw.UpdateOne(1)
	if err := cw.UpdateWeightedBatch([]int64{2, 3}, []int64{7, 5}); err != nil {
		t.Fatal(err)
	}
	if got := cw.Estimate(1); got != 11 {
		t.Fatalf("estimate=%d, want 11", got)
	}
	est, lb, ub := cw.EstimateLast(1, 2)
	if est != 7 || lb != 7 || ub != 7 {
		t.Fatalf("EstimateLast: (%d, %d, %d)", est, lb, ub)
	}
	if rows := cw.TopKLast(3, 2); len(rows) != 2 || rows[0].Item != 1 {
		t.Fatalf("TopKLast: %v", rows)
	}
	cw.Rotate()
	cw.Rotate()
	cw.Rotate()
	if got := cw.StreamWeight(); got != 0 {
		t.Fatalf("expired weight still counted: N=%d", got)
	}
	if got := cw.Rotations(); got != 3 {
		t.Fatalf("rotations=%d", got)
	}
	blob, err := cw.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWindowedRace is the rotation-under-load race test:
// writers, batch writers, point and row readers, and a rotation driver
// all hammering one window. Run with -race (CI does for ./freq/...).
func TestConcurrentWindowedRace(t *testing.T) {
	cw, err := NewConcurrentWindowed[uint64](256, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stopAt := time.Now().Add(150 * time.Millisecond)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]uint64, 64)
			for i := 0; time.Now().Before(stopAt); i++ {
				if i%2 == 0 {
					_ = cw.Update(uint64(g*1000+i%50), int64(i%7+1))
				} else {
					for j := range batch {
						batch[j] = uint64(g*1000 + (i+j)%50)
					}
					cw.UpdateBatch(batch)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stopAt) {
			cw.Rotate()
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stopAt); i++ {
				switch i % 4 {
				case 0:
					_ = cw.Estimate(uint64(i % 100))
				case 1:
					_ = cw.TopKLast(1+i%4, 5)
				case 2:
					_ = cw.FrequentItemsAboveThresholdLast(1+i%4, 10, NoFalseNegatives)
				case 3:
					n := 0
					for range cw.All() {
						n++
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentWindowedTicker(t *testing.T) {
	cw, err := NewConcurrentWindowed[int64](64, 4)
	if err != nil {
		t.Fatal(err)
	}
	stop := cw.StartRotating(2 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for cw.Rotations() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never rotated the window")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	after := cw.Rotations()
	time.Sleep(10 * time.Millisecond)
	if got := cw.Rotations(); got != after {
		t.Fatalf("window kept rotating after stop: %d -> %d", after, got)
	}
}

// recordingSink captures each retired slot's bounds and content summary
// — the test double for the durable store.
type recordingSink struct {
	bounds  [][2]time.Time
	weights []int64
	est7    []int64
	err     error
}

func (r *recordingSink) AppendSlot(v *View[int64], start, end time.Time) error {
	r.bounds = append(r.bounds, [2]time.Time{start, end})
	r.weights = append(r.weights, v.StreamWeight())
	r.est7 = append(r.est7, v.Estimate(7))
	return r.err
}

func TestRotationSink(t *testing.T) {
	wd, err := NewWindowed[int64](64, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	sink := &recordingSink{}
	wd.SetRotationSink(sink, base)

	// Interval 1: some weight on item 7.
	wd.UpdateOne(7)
	wd.UpdateOne(7)
	wd.UpdateOne(9)
	wd.RotateAt(base.Add(time.Second))
	// Interval 2: empty — must NOT reach the sink.
	wd.RotateAt(base.Add(2 * time.Second))
	// Interval 3: different weight.
	if err := wd.Update(7, 5); err != nil {
		t.Fatal(err)
	}
	wd.RotateAt(base.Add(3 * time.Second))

	if err := wd.SinkErr(); err != nil {
		t.Fatal(err)
	}
	if len(sink.bounds) != 2 {
		t.Fatalf("sink saw %d slots, want 2 (empty interval skipped)", len(sink.bounds))
	}
	want := [][2]time.Time{
		{base, base.Add(time.Second)},
		// The empty interval advanced headStart, so the third interval
		// starts at its own boundary, not at the first's end.
		{base.Add(2 * time.Second), base.Add(3 * time.Second)},
	}
	for i, b := range sink.bounds {
		if !b[0].Equal(want[i][0]) || !b[1].Equal(want[i][1]) {
			t.Fatalf("slot %d bounds: got [%v, %v), want [%v, %v)", i, b[0], b[1], want[i][0], want[i][1])
		}
	}
	if sink.weights[0] != 3 || sink.est7[0] != 2 {
		t.Fatalf("slot 0 content: weight=%d est7=%d", sink.weights[0], sink.est7[0])
	}
	if sink.weights[1] != 5 || sink.est7[1] != 5 {
		t.Fatalf("slot 1 content: weight=%d est7=%d", sink.weights[1], sink.est7[1])
	}
	// The ring advanced on every RotateAt, sink or not.
	if wd.Rotations() != 3 {
		t.Fatalf("rotations: got %d, want 3", wd.Rotations())
	}
}

func TestRotationSinkError(t *testing.T) {
	wd, err := NewWindowed[int64](64, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	boom := errors.New("disk full")
	wd.SetRotationSink(&recordingSink{err: boom}, base)
	wd.UpdateOne(1)
	wd.RotateAt(base.Add(time.Second))
	// The failure surfaces via SinkErr but never aborts the rotation.
	if !errors.Is(wd.SinkErr(), boom) {
		t.Fatalf("SinkErr: got %v, want %v", wd.SinkErr(), boom)
	}
	if wd.Rotations() != 1 {
		t.Fatalf("rotation aborted on sink error: %d rotations", wd.Rotations())
	}
	// Plain Rotate with a sink installed stamps real wall-clock bounds
	// (it routes through RotateAt).
	ok := &recordingSink{}
	wd.SetRotationSink(ok, time.Now())
	wd.UpdateOne(2)
	wd.Rotate()
	if len(ok.bounds) != 1 {
		t.Fatalf("Rotate with sink: saw %d slots, want 1", len(ok.bounds))
	}
	if !ok.bounds[0][1].After(ok.bounds[0][0]) {
		t.Fatalf("Rotate stamped an empty interval: %v", ok.bounds[0])
	}
}

func TestConcurrentWindowedRotationSink(t *testing.T) {
	cw, err := NewConcurrentWindowed[int64](64, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	sink := &recordingSink{}
	cw.SetRotationSink(sink, base)
	cw.UpdateOne(7)
	cw.RotateAt(base.Add(time.Second))
	if err := cw.SinkErr(); err != nil {
		t.Fatal(err)
	}
	if len(sink.bounds) != 1 || sink.weights[0] != 1 {
		t.Fatalf("concurrent sink: %d slots, weights %v", len(sink.bounds), sink.weights)
	}
}

// TestNextBoundary pins the wall-clock alignment rule StartRotating
// schedules by: the next boundary is strictly in the future and lies on
// a multiple of the interval.
func TestNextBoundary(t *testing.T) {
	interval := 10 * time.Second
	cases := []struct{ now, want time.Time }{
		{time.Unix(100, 0), time.Unix(110, 0)},           // exactly on a boundary -> next one
		{time.Unix(100, 1), time.Unix(110, 0)},           // just past a boundary
		{time.Unix(109, 999_999_999), time.Unix(110, 0)}, // just before
	}
	for _, c := range cases {
		if got := nextBoundary(c.now, interval); !got.Equal(c.want) {
			t.Fatalf("nextBoundary(%v, %v) = %v, want %v", c.now, interval, got, c.want)
		}
	}
	// Property: for any now, the result is in (now, now+interval] and
	// aligned.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		now := time.Unix(rng.Int63n(2_000_000_000), rng.Int63n(1_000_000_000))
		b := nextBoundary(now, interval)
		if !b.After(now) || b.Sub(now) > interval {
			t.Fatalf("nextBoundary(%v) = %v out of (now, now+interval]", now, b)
		}
		if !b.Truncate(interval).Equal(b) {
			t.Fatalf("nextBoundary(%v) = %v not aligned", now, b)
		}
	}
}

func TestStartRotatingRejectsBadInterval(t *testing.T) {
	cw, err := NewConcurrentWindowed[int64](64, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StartRotating(0) did not panic")
		}
	}()
	cw.StartRotating(0)
}
