package freq_test

import (
	"errors"
	"testing"

	"repro/freq"
)

// Every constructor and update failure must match its sentinel under
// errors.Is — the contract that lets callers branch without string
// matching.
func TestSentinelErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"zero counters", errOf(freq.New[uint64](0)), freq.ErrTooFewCounters},
		{"negative counters", errOf(freq.New[string](-5)), freq.ErrTooFewCounters},
		{"huge counters", errOf(freq.New[uint64](1 << 30)), freq.ErrTooManyCounters},
		{"quantile zero", errOf(freq.New[uint64](64, freq.WithQuantile(0))), freq.ErrBadQuantile},
		{"quantile one", errOf(freq.New[uint64](64, freq.WithQuantile(1))), freq.ErrBadQuantile},
		{"quantile negative", errOf(freq.New[string](64, freq.WithQuantile(-0.3))), freq.ErrBadQuantile},
		{"sample size zero", errOf(freq.New[uint64](64, freq.WithSampleSize(0))), freq.ErrBadSampleSize},
		{"shards zero", errOfConc(freq.NewConcurrent[uint64](64, freq.WithShards(0))), freq.ErrBadShards},
		{"signed bad quantile", errOfSigned(freq.NewSigned[uint64](64, freq.WithQuantile(2))), freq.ErrBadQuantile},
		{"concurrent huge", errOfConc(freq.NewConcurrent[uint64](1<<30, freq.WithShards(1))), freq.ErrTooManyCounters},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: %v does not match %v", c.name, c.err, c.want)
		}
	}
}

func errOf[T comparable](_ *freq.Sketch[T], err error) error         { return err }
func errOfConc[T comparable](_ *freq.Concurrent[T], err error) error { return err }
func errOfSigned[T comparable](_ *freq.Signed[T], err error) error   { return err }

func TestNegativeWeightError(t *testing.T) {
	s, err := freq.New[uint64](64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(1, -1); !errors.Is(err, freq.ErrNegativeWeight) {
		t.Errorf("Sketch.Update(-1) = %v, want ErrNegativeWeight", err)
	}
	g, err := freq.New[string](64)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Update("x", -2); !errors.Is(err, freq.ErrNegativeWeight) {
		t.Errorf("generic Update(-2) = %v, want ErrNegativeWeight", err)
	}
	c, err := freq.NewConcurrent[uint64](64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Update(1, -3); !errors.Is(err, freq.ErrNegativeWeight) {
		t.Errorf("Concurrent.Update(-3) = %v, want ErrNegativeWeight", err)
	}
}

func TestCorruptErrors(t *testing.T) {
	fast, err := freq.New[uint64](64)
	if err != nil {
		t.Fatal(err)
	}
	if err := fast.UnmarshalBinary([]byte("definitely not a sketch")); !errors.Is(err, freq.ErrCorrupt) {
		t.Errorf("fast unmarshal garbage = %v, want ErrCorrupt", err)
	}
	slow, err := freq.New[string](64)
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.UnmarshalBinary([]byte("also not a sketch bytes")); !errors.Is(err, freq.ErrCorrupt) {
		t.Errorf("generic unmarshal garbage = %v, want ErrCorrupt", err)
	}
	// A truncated valid blob must also be rejected as corrupt.
	if err := fast.Update(7, 7); err != nil {
		t.Fatal(err)
	}
	blob, err := fast.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := fast.UnmarshalBinary(blob[:len(blob)-3]); !errors.Is(err, freq.ErrCorrupt) {
		t.Errorf("truncated unmarshal = %v, want ErrCorrupt", err)
	}
}
