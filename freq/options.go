package freq

import (
	"fmt"

	"repro/internal/core"
)

// Option configures a sketch at construction. The same options apply to
// New, NewConcurrent, and NewSigned; options that do not pertain to a
// backend are recorded but inert there (see each option's note).
type Option func(*config) error

// config is the resolved cross-backend configuration. It owns the
// translation between the facade's single convention and the two internal
// ones: here, SMIN is an explicit flag, never a magic quantile value.
type config struct {
	k          int
	smin       bool
	quantile   float64 // in (0, 1); meaningful only when !smin
	sampleSize int
	seed       uint64
	shards     int
	noGrowth   bool
	batchSize  int
}

func resolve(k int, opts []Option) (config, error) {
	cfg := config{
		k:          k,
		quantile:   core.DefaultQuantile,
		sampleSize: core.DefaultSampleSize,
		shards:     defaultShards,
		batchSize:  DefaultBatchSize,
	}
	if k < 1 {
		return cfg, fmt.Errorf("%w: %d", ErrTooFewCounters, k)
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// coreOptions maps the resolved configuration onto the fast backend's
// conventions: SMIN travels as the core sentinel QuantileMin (-1), since
// a zero core quantile would silently select the default instead.
// Budgets below the smallest supported table round up rather than error.
func (c config) coreOptions() core.Options {
	q := c.quantile
	if c.smin {
		q = core.QuantileMin
	}
	k := c.k
	if k < core.MinCounters {
		k = core.MinCounters
	}
	return core.Options{
		MaxCounters:   k,
		Quantile:      q,
		SampleSize:    c.sampleSize,
		Seed:          c.seed,
		DisableGrowth: c.noGrowth,
	}
}

// itemsQuantile maps the resolved configuration onto the generic
// backend's convention, where quantile 0 itself means SMIN.
func (c config) itemsQuantile() float64 {
	if c.smin {
		return 0
	}
	return c.quantile
}

// WithQuantile selects the decrement quantile within the sample, strictly
// between 0 and 1; larger quantiles trade accuracy for update speed
// (§4.4). The default 0.5 is SMED, the paper's headline configuration.
// Use WithSMIN for the sample minimum — 0 is not accepted here.
func WithQuantile(q float64) Option {
	return func(c *config) error {
		if q <= 0 || q >= 1 {
			return fmt.Errorf("%w: %v", ErrBadQuantile, q)
		}
		c.smin = false
		c.quantile = q
		return nil
	}
}

// WithSMIN decrements by the sample minimum — the accuracy-first variant
// the paper recommends when space and error dominate speed concerns
// (§4.3).
func WithSMIN() Option {
	return func(c *config) error {
		c.smin = true
		return nil
	}
}

// WithSampleSize sets ℓ, the number of counters sampled per decrement
// (default 1024, the §2.3.2 choice).
func WithSampleSize(l int) Option {
	return func(c *config) error {
		if l < 1 {
			return fmt.Errorf("%w: %d", ErrBadSampleSize, l)
		}
		c.sampleSize = l
		return nil
	}
}

// WithSeed pins the hash seed and sampling PRNG for reproducibility. The
// default (0) draws an independent random seed per sketch, which also
// keeps merging safe against the §3.2 shared-hash-function caveat. The
// generic backend hashes through Go's runtime map and ignores the seed.
//
// Multi-sketch front-ends never let a pinned seed correlate their
// internals: NewSigned derives a distinct seed per side (and asserts
// the sides differ even on the zero-seed random path), and NewWindowed
// derives a distinct seed per ring slot. Pinning the seed therefore
// reproduces each composite exactly without ever giving two of its
// member sketches identical probe behaviour.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// defaultShards is NewConcurrent's shard count when WithShards is not
// given: enough lanes for typical server core counts without bloating
// small budgets.
const defaultShards = 8

// WithShards sets the shard count for NewConcurrent (rounded up to a
// power of two; default 8). New and NewSigned build unsharded sketches
// and ignore it.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: %d", ErrBadShards, n)
		}
		c.shards = n
		return nil
	}
}

// DefaultBatchSize is a Writer's buffer capacity when WithBatchSize is
// not given: large enough to amortize shard locking to noise, small
// enough that a flush stays in cache.
const DefaultBatchSize = 1024

// WithBatchSize sets how many (item, weight) pairs a Writer buffers
// before flushing automatically (default DefaultBatchSize). Sketch
// constructors record it but take no behaviour from it.
func WithBatchSize(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("%w: %d", ErrBadBatchSize, n)
		}
		c.batchSize = n
		return nil
	}
}

// WithoutGrowth starts the fast path's table at full size instead of
// growing from a small table as items arrive — useful for benchmarks
// isolating steady-state update cost. The generic backend has no table
// and ignores it.
func WithoutGrowth() Option {
	return func(c *config) error {
		c.noGrowth = true
		return nil
	}
}
