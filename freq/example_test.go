package freq_test

import (
	"fmt"

	"repro/freq"
)

// ExampleNew tracks byte counts per source and answers point queries
// with deterministic bracketing bounds.
func ExampleNew() {
	sk, err := freq.New[uint64](1024)
	if err != nil {
		panic(err)
	}
	sk.Update(0x0A4D0001, 1500) // source 10.77.0.1 sent a 1500-byte packet
	sk.Update(0x0A4D0001, 9000)
	sk.Update(0xC0A80101, 40)

	fmt.Println(sk.Estimate(0x0A4D0001))
	fmt.Println(sk.LowerBound(0x0A4D0001) <= 10500 && 10500 <= sk.UpperBound(0x0A4D0001))
	// Output:
	// 10500
	// true
}

// ExampleNewWindowed keeps a rolling top-k over the last 3 intervals:
// each Rotate retires the oldest interval, so early traffic ages out of
// the window while an all-time sketch would remember it forever.
func ExampleNewWindowed() {
	wd, err := freq.NewWindowed[string](64, 3)
	if err != nil {
		panic(err)
	}
	wd.Update("old-hot-flow", 9000)
	wd.Rotate()
	wd.Update("steady-flow", 400)
	wd.Rotate()
	wd.Update("steady-flow", 500)

	for _, r := range wd.TopK(2) { // window still covers all three intervals
		fmt.Println(r.Item, r.Estimate)
	}
	wd.Rotate() // "old-hot-flow"'s interval leaves the window
	for _, r := range wd.TopK(2) {
		fmt.Println(r.Item, r.Estimate)
	}
	fmt.Println(wd.Last(1).StreamWeight()) // the fresh head interval is empty
	// Output:
	// old-hot-flow 9000
	// steady-flow 900
	// steady-flow 900
	// 0
}

// ExampleSketch_TopK feeds a small weighted stream in one batch and
// lists the heaviest items.
func ExampleSketch_TopK() {
	sk, err := freq.New[string](64)
	if err != nil {
		panic(err)
	}
	items := []string{"web", "api", "db", "api", "web", "api"}
	weights := []int64{10, 40, 5, 40, 10, 20}
	if err := sk.UpdateWeightedBatch(items, weights); err != nil {
		panic(err)
	}
	for _, row := range sk.TopK(2) {
		fmt.Printf("%s %d\n", row.Item, row.Estimate)
	}
	// Output:
	// api 100
	// web 20
}

// ExampleSketch_Query composes a query with the iterator-based builder:
// threshold filtering, deterministic ordering, and pagination — the
// same builder runs against Sketch, Concurrent, Signed, and the wire
// clients in freq/server.
func ExampleSketch_Query() {
	sk, err := freq.New[string](64)
	if err != nil {
		panic(err)
	}
	items := []string{"web", "api", "db", "cache", "api", "web"}
	weights := []int64{10, 40, 5, 30, 40, 10}
	if err := sk.UpdateWeightedBatch(items, weights); err != nil {
		panic(err)
	}
	for item, row := range sk.Query().Where(15).Limit(2).All() {
		fmt.Printf("%s %d\n", item, row.Estimate)
	}
	// Output:
	// api 80
	// cache 30
}

// ExampleConcurrent_View freezes a snapshot-isolated read view: the
// view keeps answering from its state no matter what lands on the live
// sketch, and repeated reads of an unchanged sketch reuse the cached
// merged view for free.
func ExampleConcurrent_View() {
	c, err := freq.NewConcurrent[int64](1024, freq.WithShards(4))
	if err != nil {
		panic(err)
	}
	c.Update(7, 100)
	v, err := c.View()
	if err != nil {
		panic(err)
	}
	c.Update(7, 50) // lands on the live sketch, not the frozen view
	fmt.Println(v.Estimate(7))
	fmt.Println(c.Estimate(7))
	// Output:
	// 100
	// 150
}

// ExampleNewConcurrent shares one sketch between goroutines; every
// Update takes only its own shard's lock.
func ExampleNewConcurrent() {
	c, err := freq.NewConcurrent[int64](4096, freq.WithShards(4))
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Update(7, 2)
		}
	}()
	for i := 0; i < 1000; i++ {
		c.Update(7, 3)
	}
	<-done
	fmt.Println(c.Estimate(7))
	fmt.Println(c.StreamWeight())
	// Output:
	// 5000
	// 5000
}

// ExampleWriter is the batched ingestion hot path: each goroutine owns a
// buffered Writer and the shared Concurrent sketch is the only
// synchronization point. Close flushes the tail of the buffer.
func ExampleWriter() {
	c, err := freq.NewConcurrent[int64](4096)
	if err != nil {
		panic(err)
	}
	w, err := freq.NewWriter(c, freq.WithBatchSize(256))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		w.Add(int64(i%10), 5) // buffered: no lock taken yet
	}
	fmt.Println(c.StreamWeight()) // nothing flushed so far
	if err := w.Close(); err != nil {
		panic(err)
	}
	fmt.Println(c.StreamWeight())
	fmt.Println(c.Estimate(3))
	// Output:
	// 0
	// 500
	// 50
}
