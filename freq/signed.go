package freq

import "fmt"

// Signed handles streams with deletions via the strict-turnstile recipe
// from the paper's §1.3 Note: one summary for the positive updates and
// one for the magnitudes of the negative updates, with point estimates
// formed as the difference. By the triangle inequality the error of an
// estimate is at most the sum of the two summaries' errors, i.e.
// proportional to the gross volume Σ|Δ| rather than to the net weight
// N = ΣΔ — suitable when deletions are a small share of the stream.
// It is not safe for concurrent use.
type Signed[T comparable] struct {
	pos *Sketch[T]
	neg *Sketch[T]
}

// NewSigned returns a turnstile-capable pair of sketches, each with
// counter budget k and the given options. A pinned seed (WithSeed) is
// automatically varied between the two sides so their probe behaviour
// never correlates.
func NewSigned[T comparable](k int, opts ...Option) (*Signed[T], error) {
	cfg, err := resolve(k, opts)
	if err != nil {
		return nil, err
	}
	pos, err := newFromConfig[T](cfg)
	if err != nil {
		return nil, err
	}
	negCfg := cfg
	if cfg.seed != 0 {
		negCfg.seed = cfg.seed ^ 0x9e3779b97f4a7c15
	}
	neg, err := newFromConfig[T](negCfg)
	if err != nil {
		return nil, err
	}
	return &Signed[T]{pos: pos, neg: neg}, nil
}

// Update processes a signed weighted update; weight may be negative.
func (t *Signed[T]) Update(item T, weight int64) {
	switch {
	case weight > 0:
		_ = t.pos.Update(item, weight)
	case weight < 0:
		_ = t.neg.Update(item, -weight)
	}
}

// Estimate returns the difference of the two summaries' estimates. It
// may be negative for items whose deletions were overestimated; callers
// that know final frequencies are non-negative may clamp at zero.
func (t *Signed[T]) Estimate(item T) int64 {
	return t.pos.Estimate(item) - t.neg.Estimate(item)
}

// LowerBound returns a certain lower bound on the true signed frequency.
func (t *Signed[T]) LowerBound(item T) int64 {
	return t.pos.LowerBound(item) - t.neg.UpperBound(item)
}

// UpperBound returns a certain upper bound on the true signed frequency.
func (t *Signed[T]) UpperBound(item T) int64 {
	return t.pos.UpperBound(item) - t.neg.LowerBound(item)
}

// MaximumError returns the additive error bound of any estimate: the sum
// of the two summaries' bands (triangle inequality, §1.3 Note).
func (t *Signed[T]) MaximumError() int64 {
	return t.pos.MaximumError() + t.neg.MaximumError()
}

// GrossWeight returns Σ|Δ|, the quantity the turnstile error guarantee
// is proportional to.
func (t *Signed[T]) GrossWeight() int64 {
	return t.pos.StreamWeight() + t.neg.StreamWeight()
}

// NetWeight returns N = ΣΔ.
func (t *Signed[T]) NetWeight() int64 {
	return t.pos.StreamWeight() - t.neg.StreamWeight()
}

// Merge folds other into t component-wise (Algorithm 5 on each side) and
// returns t.
func (t *Signed[T]) Merge(other *Signed[T]) *Signed[T] {
	if other == nil || other == t {
		return t
	}
	t.pos.Merge(other.pos)
	t.neg.Merge(other.neg)
	return t
}

func (t *Signed[T]) String() string {
	return fmt.Sprintf("freq.Signed{pos: %s, neg: %s}", t.pos, t.neg)
}
