package freq

import (
	"bytes"
	"fmt"
	"io"
	"iter"
	"math"
)

// Signed handles streams with deletions via the strict-turnstile recipe
// from the paper's §1.3 Note: one summary for the positive updates and
// one for the magnitudes of the negative updates, with point estimates
// formed as the difference. By the triangle inequality the error of an
// estimate is at most the sum of the two summaries' errors, i.e.
// proportional to the gross volume Σ|Δ| rather than to the net weight
// N = ΣΔ — suitable when deletions are a small share of the stream.
// It is not safe for concurrent use.
type Signed[T comparable] struct {
	pos *Sketch[T]
	neg *Sketch[T]
}

// NewSigned returns a turnstile-capable pair of sketches, each with
// counter budget k and the given options. The two sides are guaranteed
// distinct hash seeds on every path — a pinned seed (WithSeed) is
// varied deterministically between them, and the default random-seed
// path re-derives the negative side in the (astronomically unlikely)
// event its independent draw collides with the positive side's — so
// the sides' probe behaviour never correlates and estimate differences
// never see systematically paired evictions.
func NewSigned[T comparable](k int, opts ...Option) (*Signed[T], error) {
	cfg, err := resolve(k, opts)
	if err != nil {
		return nil, err
	}
	pos, err := newFromConfig[T](cfg)
	if err != nil {
		return nil, err
	}
	negCfg := cfg
	if cfg.seed != 0 {
		negCfg.seed = deriveSeed(cfg.seed, 1)
	}
	neg, err := newFromConfig[T](negCfg)
	if err != nil {
		return nil, err
	}
	// Assert the sides really landed on distinct seeds — covering the
	// zero-seed edge, where both drew independently — and re-derive the
	// negative side until they differ (deriveSeed varies with i, so the
	// loop terminates; in practice it never runs).
	for i := uint64(1); pos.fast != nil && neg.fast != nil && pos.fast.Seed() == neg.fast.Seed(); i++ {
		negCfg.seed = deriveSeed(pos.fast.Seed(), i)
		if neg, err = newFromConfig[T](negCfg); err != nil {
			return nil, err
		}
	}
	return &Signed[T]{pos: pos, neg: neg}, nil
}

// Update processes a signed weighted update; weight may be negative. A
// weight of math.MinInt64, whose magnitude is unrepresentable, is
// ignored (use UpdateWeightedBatch for an error-reporting path).
func (t *Signed[T]) Update(item T, weight int64) {
	if weight == math.MinInt64 {
		return
	}
	switch {
	case weight > 0:
		_ = t.pos.Update(item, weight)
	case weight < 0:
		_ = t.neg.Update(item, -weight)
	}
}

// UpdateOne processes a unit-weight insertion of item.
func (t *Signed[T]) UpdateOne(item T) { _ = t.pos.Update(item, 1) }

// UpdateBatch processes a slice of unit-weight insertions — batch parity
// with Sketch and Concurrent: the growth/decrement check is amortized
// across the batch on the positive summary.
func (t *Signed[T]) UpdateBatch(items []T) {
	t.pos.UpdateBatch(items)
}

// UpdateWeightedBatch processes the signed updates (items[i], weights[i])
// for every i — the batched turnstile hot path. Weights may be negative
// (deletions); the batch is partitioned by sign, insertions ride the
// positive summary's batch path and deletion magnitudes the negative
// one's, producing exactly the state of the equivalent Update loop (the
// two summaries are independent, so per-side order is all that matters).
// The slices must have equal length (ErrLengthMismatch), and a weight of
// math.MinInt64 — whose magnitude is unrepresentable — rejects the batch
// (ErrNegativeWeight) before any update is applied. Zero weights are
// skipped.
func (t *Signed[T]) UpdateWeightedBatch(items []T, weights []int64) error {
	if len(items) != len(weights) {
		return fmt.Errorf("%w: %d items, %d weights", ErrLengthMismatch, len(items), len(weights))
	}
	var (
		posItems, negItems     []T
		posWeights, negWeights []int64
	)
	for i, w := range weights {
		switch {
		case w > 0:
			posItems = append(posItems, items[i])
			posWeights = append(posWeights, w)
		case w == math.MinInt64:
			return fmt.Errorf("%w: magnitude of %d is unrepresentable", ErrNegativeWeight, w)
		case w < 0:
			negItems = append(negItems, items[i])
			negWeights = append(negWeights, -w)
		}
	}
	if len(posItems) > 0 {
		// Weights on both sides are strictly positive by construction
		// (MinInt64 was rejected above), so neither call can fail.
		_ = t.pos.UpdateWeightedBatch(posItems, posWeights)
	}
	if len(negItems) > 0 {
		_ = t.neg.UpdateWeightedBatch(negItems, negWeights)
	}
	return nil
}

// Estimate returns the difference of the two summaries' estimates. It
// may be negative for items whose deletions were overestimated; callers
// that know final frequencies are non-negative may clamp at zero.
func (t *Signed[T]) Estimate(item T) int64 {
	return t.pos.Estimate(item) - t.neg.Estimate(item)
}

// LowerBound returns a certain lower bound on the true signed frequency.
func (t *Signed[T]) LowerBound(item T) int64 {
	return t.pos.LowerBound(item) - t.neg.UpperBound(item)
}

// UpperBound returns a certain upper bound on the true signed frequency.
func (t *Signed[T]) UpperBound(item T) int64 {
	return t.pos.UpperBound(item) - t.neg.LowerBound(item)
}

// MaximumError returns the additive error bound of any estimate: the sum
// of the two summaries' bands (triangle inequality, §1.3 Note).
func (t *Signed[T]) MaximumError() int64 {
	return t.pos.MaximumError() + t.neg.MaximumError()
}

// GrossWeight returns Σ|Δ|, the quantity the turnstile error guarantee
// is proportional to.
func (t *Signed[T]) GrossWeight() int64 {
	return t.pos.StreamWeight() + t.neg.StreamWeight()
}

// NetWeight returns N = ΣΔ.
func (t *Signed[T]) NetWeight() int64 {
	return t.pos.StreamWeight() - t.neg.StreamWeight()
}

// StreamWeight returns the net stream weight N = ΣΔ — the quantity
// (φ, ε)-heavy-hitter thresholds φ·N scale against. It is an alias of
// NetWeight, satisfying the Queryable interface; the turnstile error
// guarantee itself is proportional to GrossWeight.
func (t *Signed[T]) StreamWeight() int64 { return t.NetWeight() }

// All iterates the rows of every item tracked by the positive summary,
// with signed estimates and bounds (the §1.3 differences). An item whose
// insertions were evicted — or that only ever saw deletions — is not
// yielded; such items cannot qualify as frequent. Order is unspecified.
func (t *Signed[T]) All() iter.Seq2[T, Row[T]] {
	return func(yield func(T, Row[T]) bool) {
		for item, p := range t.pos.All() {
			// The positive side's values are already in hand; only the
			// negative side needs lookups.
			r := Row[T]{
				Item:       item,
				Estimate:   p.Estimate - t.neg.Estimate(item),
				LowerBound: p.LowerBound - t.neg.UpperBound(item),
				UpperBound: p.UpperBound - t.neg.LowerBound(item),
			}
			if !yield(item, r) {
				return
			}
		}
	}
}

// Query starts a composable query over the signed summary.
func (t *Signed[T]) Query() *Query[T] { return From[T](t) }

// FrequentItems returns items qualifying against the summary's own error
// band, ordered by descending estimate (ties by item).
func (t *Signed[T]) FrequentItems(et ErrorType) []Row[T] {
	return t.FrequentItemsAboveThreshold(t.MaximumError(), et)
}

// FrequentItemsAboveThreshold returns items qualifying against a caller
// threshold under et, ordered by descending estimate (ties by item) —
// query parity with the unsigned front-ends, via Query.
func (t *Signed[T]) FrequentItemsAboveThreshold(threshold int64, et ErrorType) []Row[T] {
	return t.Query().Where(threshold).WithErrorType(et).Collect()
}

// TopK returns up to k rows with the largest signed estimates (ties by
// item).
func (t *Signed[T]) TopK(k int) []Row[T] {
	return t.Query().Limit(k).Collect()
}

// Merge folds other into t component-wise (Algorithm 5 on each side,
// each riding the same bulk merge kernel as unsigned sketches) and
// returns t.
func (t *Signed[T]) Merge(other *Signed[T]) *Signed[T] {
	if other == nil || other == t {
		return t
	}
	t.pos.Merge(other.pos)
	t.neg.Merge(other.neg)
	return t
}

// Serialization parity with Sketch: a Signed summary encodes as its two
// sign summaries back to back (positive, then negative), each in the
// ordinary self-delimiting sketch format, each through the same bulk
// (de)serialization kernels — there is no signed-specific item replay.

// WriteTo encodes both sign summaries to w, implementing io.WriterTo;
// on the fast path the encoding buffers are pooled, so steady-state
// calls allocate nothing.
func (t *Signed[T]) WriteTo(w io.Writer) (int64, error) {
	n1, err := t.pos.WriteTo(w)
	if err != nil {
		return n1, err
	}
	n2, err := t.neg.WriteTo(w)
	return n1 + n2, err
}

// AppendBinary implements encoding.BinaryAppender: both sign summaries
// appended to dst.
func (t *Signed[T]) AppendBinary(dst []byte) ([]byte, error) {
	dst, err := t.pos.AppendBinary(dst)
	if err != nil {
		return dst, err
	}
	return t.neg.AppendBinary(dst)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Signed[T]) MarshalBinary() ([]byte, error) {
	return t.AppendBinary(nil)
}

// ReadFrom decodes one serialized Signed summary from r, consuming
// exactly the two sketches' bytes and replacing the receiver's state.
// All-or-nothing: on error the previous state is restored.
func (t *Signed[T]) ReadFrom(r io.Reader) (int64, error) {
	savedPos, savedNeg := *t.pos, *t.neg
	n1, err := t.pos.ReadFrom(r)
	if err != nil {
		*t.pos = savedPos
		return n1, err
	}
	n2, err := t.neg.ReadFrom(r)
	if err != nil {
		*t.pos, *t.neg = savedPos, savedNeg
		return n1 + n2, err
	}
	return n1 + n2, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler: data must hold
// exactly the two sign summaries (ErrCorrupt otherwise). All-or-nothing:
// on error the previous state is kept. The decode is ReadFrom's (which
// owns the rollback of a half-decoded pair); only the trailing-bytes
// strictness is added here.
func (t *Signed[T]) UnmarshalBinary(data []byte) error {
	savedPos, savedNeg := *t.pos, *t.neg
	r := bytes.NewReader(data)
	if _, err := t.ReadFrom(r); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if r.Len() != 0 {
		*t.pos, *t.neg = savedPos, savedNeg
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return nil
}

func (t *Signed[T]) String() string {
	return fmt.Sprintf("freq.Signed{pos: %s, neg: %s}", t.pos, t.neg)
}
