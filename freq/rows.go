package freq

import (
	"fmt"

	"repro/internal/core"
)

// ErrorType selects heavy-hitter extraction semantics, mirroring the
// DataSketches API: which side of the sketch's error band — at most
// MaximumError(), the ε·W of the paper's Theorem 2 with ε = 1/(0.33·k)
// — a query is allowed to err on. One of the two is always exact; the
// sketch cannot be wrong on both sides at once. The numeric values
// align with both internal backends, so conversions are free.
type ErrorType int

const (
	// NoFalsePositives returns items whose LowerBound exceeds the
	// threshold: every returned item truly carries more weight than the
	// threshold, but items whose true frequency lies within MaximumError
	// above it may be missed. Choose this when acting on a result is
	// expensive (alerting, throttling a customer).
	NoFalsePositives ErrorType = iota
	// NoFalseNegatives returns items whose UpperBound exceeds the
	// threshold: every item truly above it is returned, plus possibly a
	// few whose true frequency lies within MaximumError below it — the
	// "(φ, ε)-heavy hitters with false positives" guarantee of §1.2.
	// Choose this when missing a heavy item is the expensive outcome
	// (capacity planning, abuse detection).
	NoFalseNegatives
)

func (e ErrorType) String() string {
	switch e {
	case NoFalsePositives:
		return "NoFalsePositives"
	case NoFalseNegatives:
		return "NoFalseNegatives"
	default:
		return fmt.Sprintf("ErrorType(%d)", int(e))
	}
}

// Row is one frequent-item result: the item with its estimate and the
// bracketing bounds (UpperBound - LowerBound == MaximumError for every
// tracked item).
type Row[T comparable] struct {
	Item       T
	Estimate   int64
	LowerBound int64
	UpperBound int64
}

func (r Row[T]) String() string {
	return fmt.Sprintf("{item:%v est:%d lb:%d ub:%d}", r.Item, r.Estimate, r.LowerBound, r.UpperBound)
}

// TailBound returns the a-priori §2.3.2 error guarantee for a k-counter
// sketch after residualWeight stream weight beyond the top j items:
// N^res(j) / (0.33·k − j), or +Inf once j reaches 0.33·k.
func TailBound(k, j int, residualWeight int64) float64 {
	return core.TailBound(k, j, residualWeight)
}
