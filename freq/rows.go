package freq

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/items"
)

// ErrorType selects heavy-hitter extraction semantics, mirroring the
// DataSketches API. The numeric values align with both internal backends,
// so conversions are free.
type ErrorType int

const (
	// NoFalsePositives returns items whose lower bound exceeds the
	// threshold: every returned item is truly above it, but items within
	// the error band may be missed.
	NoFalsePositives ErrorType = iota
	// NoFalseNegatives returns items whose upper bound exceeds the
	// threshold: every item truly above it is returned, plus possibly a
	// few items within the error band below it.
	NoFalseNegatives
)

func (e ErrorType) String() string {
	switch e {
	case NoFalsePositives:
		return "NoFalsePositives"
	case NoFalseNegatives:
		return "NoFalseNegatives"
	default:
		return fmt.Sprintf("ErrorType(%d)", int(e))
	}
}

// Row is one frequent-item result: the item with its estimate and the
// bracketing bounds (UpperBound - LowerBound == MaximumError for every
// tracked item).
type Row[T comparable] struct {
	Item       T
	Estimate   int64
	LowerBound int64
	UpperBound int64
}

func (r Row[T]) String() string {
	return fmt.Sprintf("{item:%v est:%d lb:%d ub:%d}", r.Item, r.Estimate, r.LowerBound, r.UpperBound)
}

func rowsFromCore[T comparable](in []core.Row) []Row[T] {
	out := make([]Row[T], len(in))
	for i, r := range in {
		out[i] = Row[T]{
			Item:       fromInt64[T](r.Item),
			Estimate:   r.Estimate,
			LowerBound: r.LowerBound,
			UpperBound: r.UpperBound,
		}
	}
	return out
}

func rowsFromItems[T comparable](in []items.Row[T]) []Row[T] {
	out := make([]Row[T], len(in))
	for i, r := range in {
		out[i] = Row[T]{
			Item:       r.Item,
			Estimate:   r.Estimate,
			LowerBound: r.LowerBound,
			UpperBound: r.UpperBound,
		}
	}
	return out
}

// TailBound returns the a-priori §2.3.2 error guarantee for a k-counter
// sketch after residualWeight stream weight beyond the top j items:
// N^res(j) / (0.33·k − j), or +Inf once j reaches 0.33·k.
func TailBound(k, j int, residualWeight int64) float64 {
	return core.TailBound(k, j, residualWeight)
}
