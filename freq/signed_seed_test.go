// Regression tests for the Signed pinned-seed edge: the two sides of
// the turnstile pair must land on distinct hash seeds on every
// construction path — pinned seeds are derived apart deterministically,
// and the zero-seed (random) path is asserted distinct rather than
// merely probably so.
package freq

import "testing"

func signedSeeds[T comparable](t *testing.T, sg *Signed[T]) (pos, neg uint64) {
	t.Helper()
	if sg.pos.fast == nil || sg.neg.fast == nil {
		t.Fatal("seed assertions only apply to the fast backend")
	}
	return sg.pos.fast.Seed(), sg.neg.fast.Seed()
}

func TestSignedZeroSeedSidesDistinct(t *testing.T) {
	for i := 0; i < 32; i++ {
		sg, err := NewSigned[int64](64)
		if err != nil {
			t.Fatal(err)
		}
		pos, neg := signedSeeds(t, sg)
		if pos == neg {
			t.Fatalf("iteration %d: zero-seed path gave both sides seed %#x", i, pos)
		}
	}
}

func TestSignedPinnedSeedSidesDistinctAndReproducible(t *testing.T) {
	a, err := NewSigned[int64](64, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	aPos, aNeg := signedSeeds(t, a)
	if aPos == aNeg {
		t.Fatalf("pinned seed gave both sides seed %#x", aPos)
	}
	if aPos != 7 {
		t.Fatalf("positive side seed %#x, want the pinned 7", aPos)
	}
	b, err := NewSigned[int64](64, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	bPos, bNeg := signedSeeds(t, b)
	if aPos != bPos || aNeg != bNeg {
		t.Fatal("pinned-seed construction is not reproducible")
	}
}
