// Regression tests for the snapshot-isolated read path: the epoch cache
// must make repeated reads free (merge count flat), every write path
// must invalidate it, and a View must stay frozen while the live sketch
// moves on — on both backends.
package freq_test

import (
	"testing"

	"repro/freq"
)

// TestConcurrentCachedViewMergeCountFlat is the satellite regression
// test: repeated row reads with no interleaved writes must perform zero
// additional shard merges.
func TestConcurrentCachedViewMergeCountFlat(t *testing.T) {
	run := func(t *testing.T, read func(c *freq.Concurrent[int64])) {
		const shards = 4
		c, err := freq.NewConcurrent[int64](1024, freq.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 100; i++ {
			if err := c.Update(i, i+1); err != nil {
				t.Fatal(err)
			}
		}
		read(c)
		after := c.ViewMerges()
		if after != shards {
			t.Fatalf("first read merged %d shards, want %d", after, shards)
		}
		for i := 0; i < 10; i++ {
			read(c)
		}
		if got := c.ViewMerges(); got != after {
			t.Fatalf("10 repeated reads grew merge count %d -> %d; cache not reused", after, got)
		}
		// One write invalidates: the next read re-merges exactly once.
		if err := c.Update(7, 1); err != nil {
			t.Fatal(err)
		}
		read(c)
		if got := c.ViewMerges(); got != after+shards {
			t.Fatalf("read after write merged to %d, want %d", got, after+shards)
		}
	}
	t.Run("TopK", func(t *testing.T) { run(t, func(c *freq.Concurrent[int64]) { _ = c.TopK(5) }) })
	t.Run("FrequentItemsAboveThreshold", func(t *testing.T) {
		run(t, func(c *freq.Concurrent[int64]) { _ = c.FrequentItemsAboveThreshold(10, freq.NoFalseNegatives) })
	})
	t.Run("QueryCollect", func(t *testing.T) {
		run(t, func(c *freq.Concurrent[int64]) { _ = c.Query().Limit(3).Collect() })
	})
}

// TestConcurrentCachedViewGenericBackend runs the same flat-merge-count
// contract on the map-backed backend, including Writer flushes and
// batches as invalidating writes.
func TestConcurrentCachedViewGenericBackend(t *testing.T) {
	const shards = 4
	c, err := freq.NewConcurrent[string](1024, freq.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	c.UpdateBatch([]string{"a", "b", "c", "a"})
	_ = c.TopK(2)
	base := c.ViewMerges()
	if base != shards {
		t.Fatalf("first read merged %d shards, want %d", base, shards)
	}
	for i := 0; i < 5; i++ {
		_ = c.TopK(2)
		_ = c.FrequentItems(freq.NoFalseNegatives)
	}
	if got := c.ViewMerges(); got != base {
		t.Fatalf("repeated reads grew merge count %d -> %d", base, got)
	}

	// A Writer flush is a write: it must invalidate the cache.
	w, err := freq.NewWriter(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add("d", 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.TopK(1); len(got) != 1 || got[0].Item != "d" {
		t.Fatalf("TopK after writer flush = %v, want d", got)
	}
	if got := c.ViewMerges(); got <= base {
		t.Fatalf("writer flush did not invalidate view (merges still %d)", got)
	}

	// Reset invalidates too.
	base = c.ViewMerges()
	c.Reset()
	if got := c.TopK(1); len(got) != 0 {
		t.Fatalf("TopK after Reset = %v, want empty", got)
	}
	if got := c.ViewMerges(); got <= base {
		t.Fatal("Reset did not invalidate view")
	}
}

// TestViewSnapshotIsolation pins the isolation contract: a View keeps
// answering from its frozen state no matter what lands on the live
// sketch afterwards, and a fresh View sees the new writes.
func TestViewSnapshotIsolation(t *testing.T) {
	c, err := freq.NewConcurrent[int64](1024, freq.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Update(1, 100); err != nil {
		t.Fatal(err)
	}
	v1, err := c.View()
	if err != nil {
		t.Fatal(err)
	}
	if got := v1.Estimate(1); got != 100 {
		t.Fatalf("view Estimate(1) = %d, want 100", got)
	}
	if err := c.Update(1, 50); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(2, 30); err != nil {
		t.Fatal(err)
	}
	// The frozen view is unmoved; the live sketch and a fresh view see
	// the writes.
	if got := v1.Estimate(1); got != 100 {
		t.Errorf("frozen view moved: Estimate(1) = %d, want 100", got)
	}
	if got := v1.Estimate(2); got != 0 {
		t.Errorf("frozen view moved: Estimate(2) = %d, want 0", got)
	}
	if got := c.Estimate(1); got != 150 {
		t.Errorf("live Estimate(1) = %d, want 150", got)
	}
	v2, err := c.View()
	if err != nil {
		t.Fatal(err)
	}
	if got := v2.Estimate(1); got != 150 {
		t.Errorf("fresh view Estimate(1) = %d, want 150", got)
	}
	if got, want := v2.StreamWeight(), int64(180); got != want {
		t.Errorf("fresh view StreamWeight = %d, want %d", got, want)
	}

	// Materialize yields an independent mutable copy.
	own, err := v2.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := own.Update(1, 1000); err != nil {
		t.Fatal(err)
	}
	if got := v2.Estimate(1); got != 150 {
		t.Errorf("mutating the materialized copy moved the view: %d", got)
	}
}

// TestQueryOverConcurrentMatchesSketch pins that a Query over a sharded
// Concurrent returns exactly the rows of a plain Sketch fed the same
// stream, when the budget evicts nothing (exact regime, merged view
// offset 0).
func TestQueryOverConcurrentMatchesSketch(t *testing.T) {
	sk, err := freq.New[int64](4096)
	if err != nil {
		t.Fatal(err)
	}
	c, err := freq.NewConcurrent[int64](4096, freq.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		w := 1 + (i*i)%97
		if err := sk.Update(i, w); err != nil {
			t.Fatal(err)
		}
		if err := c.Update(i, w); err != nil {
			t.Fatal(err)
		}
	}
	want := sk.Query().Where(50).Limit(20).Collect()
	got := c.Query().Where(50).Limit(20).Collect()
	if len(want) == 0 {
		t.Fatal("fixture produced no rows")
	}
	if len(got) != len(want) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}
