// Package tenant multiplexes the frequent-items service across many
// independent streams: a Manager owns a bounded registry of lazily
// created per-tenant summaries (each a Concurrent sketch plus an
// optional Windowed twin, geometry stamped from one shared template)
// and recycles retired tenants' tables through a warm pool, so tenant
// churn at steady state allocates nothing — the same core.Clear /
// sharded.Reset machinery that makes window rotation alloc-free.
//
// Quotas bound every axis: MaxCounters caps each tenant's summary,
// MaxTenants caps the registry (capacity pressure evicts the idlest
// unreferenced tenant), and IdleTTL retires tenants nobody has touched
// lately. Eviction is not loss when a SnapshotSink is installed: the
// retiring tenant's summary is persisted first (freq/store's Tenants
// registry files it under a tenant-scoped directory), so an evicted
// tenant's history survives and RANGE-style queries can replay it.
//
// Handles are reference counted: Acquire pins a tenant for the duration
// of one command and Release unpins it, and only unreferenced tenants
// are evictable — a reader mid-TOPK can never have its tables reset
// (and its weight leaked into a stranger's stream) by a concurrent
// eviction.
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/freq"
)

// Errors reported by the manager. They are wrapped with context; test
// with errors.Is.
var (
	// ErrBadID rejects tenant ids outside the wire-safe alphabet (1 to
	// MaxIDLen printable non-space ASCII bytes).
	ErrBadID = errors.New("tenant: invalid tenant id")
	// ErrLimit rejects a creation when the registry is full and every
	// live tenant is referenced, so nothing can be evicted.
	ErrLimit = errors.New("tenant: tenant limit reached")
	// ErrBusy rejects an explicit Evict of a tenant with live handles.
	ErrBusy = errors.New("tenant: tenant busy")
	// ErrUnknown rejects an explicit Evict of a tenant that is not live.
	ErrUnknown = errors.New("tenant: unknown tenant")
)

// MaxIDLen bounds a tenant id: it must fit a text protocol field and a
// v2 pairs-frame header without ever dominating either.
const MaxIDLen = 128

// ValidID reports whether id is a legal tenant id: 1..MaxIDLen bytes,
// every byte printable non-space ASCII. The alphabet keeps ids safe in
// both framings (no whitespace to split a text line, no control bytes)
// and cheap to escape into store directory names.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > MaxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// validIDBytes is ValidID for the binary frame path, which holds the id
// as raw bytes and must not allocate a string just to validate it.
//
//freq:noalloc
func validIDBytes(id []byte) bool {
	if len(id) == 0 || len(id) > MaxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// SnapshotSink receives a retiring tenant's merged summary at eviction
// and drain time — the durable hand-off. The view aliases manager-owned
// state and is valid only for the duration of the call; implementations
// that keep the data must serialize it before returning (freq/store's
// Tenants registry appends it to the tenant's partition directory).
type SnapshotSink[T comparable] interface {
	AppendTenant(id string, v *freq.View[T], start, end time.Time) error
}

// Config parameterizes a Manager. The sketch fields mirror
// server.Config: every tenant is stamped from this one template.
type Config struct {
	// MaxCounters is each tenant's counter budget (default 4096) — the
	// per-tenant quota on summary memory.
	MaxCounters int
	// Shards is each tenant sketch's concurrency fan-out (default 4;
	// tenants are many, so per-tenant fan-out stays modest).
	Shards int
	// WindowIntervals, when positive, gives every tenant a sliding-
	// window twin of that many intervals alongside its all-time summary.
	WindowIntervals int
	// Seed, when nonzero, pins tenant sketch seeds deterministically
	// (varied per creation): two managers built with the same Seed that
	// create tenants in the same order hold byte-identical state after
	// identical streams — the cross-framing conformance property.
	Seed uint64
	// MaxTenants caps the live registry (default 1024). At capacity a
	// new tenant evicts the idlest unreferenced one; if every tenant is
	// referenced the creation fails with ErrLimit.
	MaxTenants int
	// IdleTTL, when positive, makes EvictIdle (and the StartEvicting
	// ticker) retire tenants untouched for this long. Zero keeps idle
	// tenants until capacity pressure evicts them.
	IdleTTL time.Duration
	// PoolSize caps the warm pool of retired tenant tables (0 means
	// MaxTenants, so any churn pattern is alloc-free at steady state).
	// Pool entries hold full-size summaries; shrink this to trade churn
	// allocations for memory.
	PoolSize int
}

// Tenant is one live per-tenant summary, pinned by Acquire. The sketch
// handles stay valid until Release; after Release the manager may evict
// the tenant and recycle its tables at any time.
type Tenant[T comparable] struct {
	mgr *Manager[T]
	sk  *freq.Concurrent[T]
	win *freq.ConcurrentWindowed[T]

	// Registry state below; all guarded by mgr.mu — a cross-object
	// contract freqvet's epochlock analyzer cannot express (its
	// //freq:guardedBy(mu) names a sibling mutex on the same struct), so
	// it is enforced by the -race soak tests instead of the vet gate.
	// Every read or write of these fields happens inside a Manager
	// method or a Tenant method that locks t.mgr.mu first.

	id       string
	seq      uint64
	refs     int
	lastUsed int64     // unix nanos of the last Acquire or Release
	start    time.Time // when this incarnation began (sink bounds)
}

// ID returns the tenant id this handle was acquired under.
func (t *Tenant[T]) ID() string {
	t.mgr.mu.Lock()
	defer t.mgr.mu.Unlock()
	return t.id
}

// Sketch returns the tenant's all-time summary. Valid until Release.
func (t *Tenant[T]) Sketch() *freq.Concurrent[T] { return t.sk }

// Windowed returns the tenant's sliding-window twin, nil when the
// manager was configured without windows. Valid until Release.
func (t *Tenant[T]) Windowed() *freq.ConcurrentWindowed[T] { return t.win }

// Release unpins the handle. The tenant becomes evictable once its last
// handle releases; using the handle after Release is a bug.
func (t *Tenant[T]) Release() {
	m := t.mgr
	m.mu.Lock()
	t.refs--
	t.lastUsed = m.now().UnixNano()
	m.mu.Unlock()
}

// Update applies one weighted update to both of the tenant's summaries.
func (t *Tenant[T]) Update(item T, weight int64) error {
	if err := t.sk.Update(item, weight); err != nil {
		return err
	}
	if t.win != nil {
		// Validated above; the twin cannot reject it.
		_ = t.win.Update(item, weight)
	}
	return nil
}

// UpdateWeightedBatch applies one all-or-nothing weighted batch to both
// of the tenant's summaries: a bad pair rejects the whole batch with
// neither summary touched.
func (t *Tenant[T]) UpdateWeightedBatch(items []T, weights []int64) error {
	if err := t.sk.UpdateWeightedBatch(items, weights); err != nil {
		return err
	}
	if t.win != nil {
		_ = t.win.UpdateWeightedBatch(items, weights)
	}
	return nil
}

// Reset clears both of the tenant's summaries in place.
func (t *Tenant[T]) Reset() {
	t.sk.Reset()
	if t.win != nil {
		t.win.Reset()
	}
}

// Stats summarizes the registry (the server's STATS surfaces it).
type Stats struct {
	// Active and Max are the live tenant count and the registry cap;
	// Active/Max is the occupancy the STATS reply reports.
	Active, Max int
	// Pooled counts warm table sets waiting in the recycle pool.
	Pooled int
	// Created counts Acquire-driven creations (pool reuse included),
	// Evictions counts retirements (capacity, TTL, and explicit), and
	// PoolHits counts the creations served without building new tables.
	Created, Evictions, PoolHits int64
}

// Manager owns the tenant registry: the id→summary map, the warm
// recycle pool, and the eviction machinery. All methods are safe for
// concurrent use.
type Manager[T comparable] struct {
	cfg Config
	// now is the clock, injectable for TTL tests.
	now func() time.Time
	// sink receives retiring tenants' summaries; set once before
	// serving (SetSink), never swapped while live.
	sink SnapshotSink[T]

	// mu guards the registry: the tenant map, the pool, every Tenant's
	// registry fields (id, seq, refs, lastUsed, start), and the
	// counters below. Sketch contents are NOT guarded here — each
	// summary has its own synchronization — so ingest and queries on
	// acquired handles never serialize on the registry lock.
	mu sync.Mutex
	//freq:guardedBy(mu)
	tenants map[string]*Tenant[T]
	//freq:guardedBy(mu)
	pool []*Tenant[T]
	//freq:guardedBy(mu)
	seq uint64
	//freq:guardedBy(mu)
	builds uint64 // fresh table-set constructions (seed derivation)
	//freq:guardedBy(mu)
	created int64
	//freq:guardedBy(mu)
	evictions int64
	//freq:guardedBy(mu)
	poolHits int64
	//freq:guardedBy(mu)
	sinkErr error
}

// New returns a Manager stamping tenants from cfg.
func New[T comparable](cfg Config) (*Manager[T], error) {
	if cfg.MaxCounters == 0 {
		cfg.MaxCounters = 4096
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.MaxTenants == 0 {
		cfg.MaxTenants = 1024
	}
	if cfg.MaxTenants < 1 || cfg.MaxCounters < 1 {
		return nil, fmt.Errorf("tenant: MaxTenants and MaxCounters must be positive (got %d, %d)",
			cfg.MaxTenants, cfg.MaxCounters)
	}
	if cfg.PoolSize == 0 || cfg.PoolSize > cfg.MaxTenants {
		cfg.PoolSize = cfg.MaxTenants
	}
	m := &Manager[T]{
		cfg:     cfg,
		now:     time.Now,
		tenants: make(map[string]*Tenant[T], cfg.MaxTenants),
	}
	return m, nil
}

// SetSink installs the eviction/drain persistence hook and returns m
// for chaining. Install it before serving; nil disables persistence
// (evicted tenants' summaries are dropped).
func (m *Manager[T]) SetSink(sink SnapshotSink[T]) *Manager[T] {
	m.sink = sink
	return m
}

// setClock replaces the wall clock (TTL tests).
func (m *Manager[T]) setClock(now func() time.Time) { m.now = now }

// Acquire returns the tenant for id, creating it on first use, and pins
// it against eviction until Release. At capacity the idlest
// unreferenced tenant is evicted to make room; ErrLimit when none is.
func (m *Manager[T]) Acquire(id string) (*Tenant[T], error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.tenants[id]; ok {
		t.refs++
		t.lastUsed = m.now().UnixNano()
		return t, nil
	}
	return m.createLocked(id)
}

// AcquireBytes is Acquire keyed by raw bytes — the binary frame path's
// entry point. A registry hit allocates nothing (the map lookup uses
// the compiler's string(bytes) key optimization); only a first-use
// creation materializes the id as a string.
func (m *Manager[T]) AcquireBytes(id []byte) (*Tenant[T], error) {
	if !validIDBytes(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.tenants[string(id)]; ok {
		t.refs++
		t.lastUsed = m.now().UnixNano()
		return t, nil
	}
	return m.createLocked(string(id))
}

// createLocked installs a new tenant under id: from the warm pool when
// one is available (zero-alloc churn), else freshly built from the
// template with a deterministically varied seed.
//
//freq:locked(mu)
func (m *Manager[T]) createLocked(id string) (*Tenant[T], error) {
	if len(m.tenants) >= m.cfg.MaxTenants {
		if !m.evictIdlestLocked() {
			return nil, fmt.Errorf("%w: %d live, all referenced", ErrLimit, len(m.tenants))
		}
	}
	var t *Tenant[T]
	if n := len(m.pool); n > 0 {
		t = m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
		m.poolHits++
	} else {
		var err error
		if t, err = m.buildLocked(); err != nil {
			return nil, err
		}
	}
	m.seq++
	now := m.now()
	t.id = id
	t.seq = m.seq
	t.refs = 1
	t.lastUsed = now.UnixNano()
	t.start = now
	m.tenants[id] = t
	m.created++
	return t, nil
}

// buildLocked constructs a fresh table set from the template. Seeds are
// derived from (Config.Seed, build ordinal), so twin managers that
// build in the same order agree byte for byte, and a recycled table set
// keeps its original seeds (state equality then depends only on the
// creation order, which the conformance twins share).
//
//freq:locked(mu)
func (m *Manager[T]) buildLocked() (*Tenant[T], error) {
	m.builds++
	opts := []freq.Option{freq.WithShards(m.cfg.Shards)}
	var seed uint64
	if m.cfg.Seed != 0 {
		seed = deriveSeed(m.cfg.Seed, m.builds)
		opts = append(opts, freq.WithSeed(seed))
	}
	sk, err := freq.NewConcurrent[T](m.cfg.MaxCounters, opts...)
	if err != nil {
		return nil, err
	}
	t := &Tenant[T]{mgr: m, sk: sk}
	if m.cfg.WindowIntervals > 0 {
		var wopts []freq.Option
		if seed != 0 {
			// Decorrelate the window ring from the all-time shards, the
			// same convention as the server's global pair.
			wopts = append(wopts, freq.WithSeed(seed^0x77696e646f777332))
		}
		win, err := freq.NewConcurrentWindowed[T](m.cfg.MaxCounters, m.cfg.WindowIntervals, wopts...)
		if err != nil {
			return nil, err
		}
		t.win = win
	}
	return t, nil
}

// deriveSeed scrambles (seed, i) into a per-build seed — splitmix64's
// finalizer, never returning 0 so a pinned template stays pinned.
func deriveSeed(seed, i uint64) uint64 {
	x := seed + i*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// evictIdlestLocked retires the unreferenced tenant with the oldest
// lastUsed (ties broken by creation order, so twin managers evict
// identically). It reports whether a victim existed.
//
//freq:locked(mu)
func (m *Manager[T]) evictIdlestLocked() bool {
	var victim *Tenant[T]
	for _, t := range m.tenants {
		if t.refs > 0 {
			continue
		}
		if victim == nil || t.lastUsed < victim.lastUsed ||
			(t.lastUsed == victim.lastUsed && t.seq < victim.seq) {
			victim = t
		}
	}
	if victim == nil {
		return false
	}
	m.evictLocked(victim, m.now())
	return true
}

// evictLocked retires one unreferenced tenant: persist through the sink
// (when installed and non-empty), reset both summaries in place, and
// return the warm table set to the pool. The reset is what makes churn
// alloc-free: the next creation pops fully-built, cleared tables.
//
//freq:locked(mu)
func (m *Manager[T]) evictLocked(t *Tenant[T], end time.Time) {
	if m.sink != nil {
		if v, err := t.sk.View(); err != nil {
			m.sinkErr = err
		} else if v.StreamWeight() > 0 {
			if err := m.sink.AppendTenant(t.id, v, t.start, end); err != nil {
				m.sinkErr = err
			}
		}
	}
	delete(m.tenants, t.id)
	t.id = ""
	t.sk.Reset()
	if t.win != nil {
		t.win.Reset()
	}
	m.evictions++
	if len(m.pool) < m.cfg.PoolSize {
		m.pool = append(m.pool, t)
	}
}

// Evict explicitly retires id right now: persisted through the sink,
// tables recycled. ErrUnknown when id is not live, ErrBusy when handles
// are outstanding (the caller of an EVICT command must not hold one).
func (m *Manager[T]) Evict(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, id)
	}
	if t.refs > 0 {
		return fmt.Errorf("%w: %q has %d live handles", ErrBusy, id, t.refs)
	}
	m.evictLocked(t, m.now())
	return nil
}

// EvictIdle retires every unreferenced tenant untouched for at least
// Config.IdleTTL, in creation order, and returns how many were
// retired. A no-op (returning 0) when IdleTTL is zero.
func (m *Manager[T]) EvictIdle() int {
	if m.cfg.IdleTTL <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	cutoff := now.Add(-m.cfg.IdleTTL).UnixNano()
	var victims []*Tenant[T]
	for _, t := range m.tenants {
		if t.refs == 0 && t.lastUsed <= cutoff {
			victims = append(victims, t)
		}
	}
	// Deterministic order: eviction order decides pool reuse order,
	// which twin managers must share.
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, t := range victims {
		m.evictLocked(t, now)
	}
	return len(victims)
}

// StartEvicting runs EvictIdle on a ticker every interval and returns
// an idempotent stop function — the daemon's TTL driver.
func (m *Manager[T]) StartEvicting(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				m.EvictIdle()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// RotateAll advances every live tenant's sliding window one interval —
// the daemon's per-tenant analogue of the global rotation ticker. A
// no-op when the manager was configured without windows.
func (m *Manager[T]) RotateAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.tenants {
		if t.win != nil {
			t.win.Rotate()
		}
	}
}

// StartRotating drives RotateAll on a ticker every interval and returns
// an idempotent stop function.
func (m *Manager[T]) StartRotating(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				m.RotateAll()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Drain persists every live tenant's summary through the sink with end
// as the closing bound — the SIGTERM head-slot flush. It does not evict
// or reset anything (the process is exiting); call it after the server
// has drained so no handles are in flight. Returns the first sink
// error, joined with any earlier recorded one.
func (m *Manager[T]) Drain(end time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sink == nil {
		return m.sinkErr
	}
	// Creation order, so the drain is deterministic.
	live := make([]*Tenant[T], 0, len(m.tenants))
	for _, t := range m.tenants {
		live = append(live, t)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })
	var firstErr error
	for _, t := range live {
		v, err := t.sk.View()
		if err == nil && v.StreamWeight() == 0 {
			continue
		}
		if err == nil {
			err = m.sink.AppendTenant(t.id, v, t.start, end)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return errors.Join(m.sinkErr, firstErr)
}

// SinkErr returns the most recent eviction-path sink failure, or nil.
// Evictions never block on a failing sink; the error is recorded here
// for the operator, mirroring Windowed.SinkErr.
func (m *Manager[T]) SinkErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sinkErr
}

// Len returns the live tenant count.
func (m *Manager[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tenants)
}

// Stats returns a consistent snapshot of the registry counters.
func (m *Manager[T]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Active:    len(m.tenants),
		Max:       m.cfg.MaxTenants,
		Pooled:    len(m.pool),
		Created:   m.created,
		Evictions: m.evictions,
		PoolHits:  m.poolHits,
	}
}
