package tenant

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/freq"
)

// captureSink records every persisted view's weight per tenant id — the
// conservation ledger for eviction-path tests.
type captureSink struct {
	mu      sync.Mutex
	weight  map[string]int64
	appends int
	fail    error
}

func (s *captureSink) AppendTenant(id string, v *freq.View[int64], start, end time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		return s.fail
	}
	if s.weight == nil {
		s.weight = make(map[string]int64)
	}
	if end.Before(start) {
		return fmt.Errorf("sink: end %v before start %v", end, start)
	}
	s.weight[id] += v.StreamWeight()
	s.appends++
	return nil
}

func (s *captureSink) total(id string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.weight[id]
}

func TestAcquireCreateUpdateQuery(t *testing.T) {
	m, err := New[int64](Config{MaxCounters: 256, Shards: 2, WindowIntervals: 3, MaxTenants: 8})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := m.Acquire("alice")
	if err != nil {
		t.Fatal(err)
	}
	if ten.ID() != "alice" {
		t.Fatalf("ID = %q, want alice", ten.ID())
	}
	if ten.Windowed() == nil {
		t.Fatal("WindowIntervals > 0 but Windowed() is nil")
	}
	if err := ten.Update(7, 100); err != nil {
		t.Fatal(err)
	}
	if err := ten.UpdateWeightedBatch([]int64{7, 8}, []int64{50, 25}); err != nil {
		t.Fatal(err)
	}
	if got := ten.Sketch().StreamWeight(); got != 175 {
		t.Fatalf("StreamWeight = %d, want 175", got)
	}
	if got := ten.Windowed().StreamWeight(); got != 175 {
		t.Fatalf("windowed StreamWeight = %d, want 175 (twin must mirror)", got)
	}
	// Bad batch is all-or-nothing on both summaries.
	if err := ten.UpdateWeightedBatch([]int64{1, 2}, []int64{5, -5}); err == nil {
		t.Fatal("negative weight batch accepted")
	}
	if got := ten.Sketch().StreamWeight(); got != 175 {
		t.Fatalf("StreamWeight after rejected batch = %d, want 175", got)
	}
	if got := ten.Windowed().StreamWeight(); got != 175 {
		t.Fatalf("windowed StreamWeight after rejected batch = %d, want 175", got)
	}
	ten.Release()

	// Second acquire is a registry hit, not a second creation.
	ten2, err := m.Acquire("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got := ten2.Sketch().StreamWeight(); got != 175 {
		t.Fatalf("re-acquired StreamWeight = %d, want 175", got)
	}
	ten2.Release()
	if st := m.Stats(); st.Created != 1 || st.Active != 1 {
		t.Fatalf("Stats = %+v, want Created=1 Active=1", st)
	}
}

func TestValidID(t *testing.T) {
	good := []string{"a", "tenant-1", "UPPER.lower_0", "%", "~", "!"}
	for _, id := range good {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false, want true", id)
		}
	}
	long := make([]byte, MaxIDLen)
	for i := range long {
		long[i] = 'a'
	}
	if !ValidID(string(long)) {
		t.Error("max-length id rejected")
	}
	bad := []string{"", string(long) + "a", "has space", "tab\there", "nl\n", "ctrl\x01", "utfé"}
	for _, id := range bad {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true, want false", id)
		}
	}
	if _, err := New[int64](Config{}); err != nil {
		t.Fatal(err)
	}
	m, _ := New[int64](Config{})
	if _, err := m.Acquire("has space"); !errors.Is(err, ErrBadID) {
		t.Fatalf("Acquire bad id: err = %v, want ErrBadID", err)
	}
	if _, err := m.AcquireBytes([]byte("has space")); !errors.Is(err, ErrBadID) {
		t.Fatalf("AcquireBytes bad id: err = %v, want ErrBadID", err)
	}
}

func TestEvictExplicit(t *testing.T) {
	sink := &captureSink{}
	m, err := New[int64](Config{MaxCounters: 128, MaxTenants: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSink(sink)

	if err := m.Evict("ghost"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Evict unknown: err = %v, want ErrUnknown", err)
	}
	ten, err := m.Acquire("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := ten.Update(1, 42); err != nil {
		t.Fatal(err)
	}
	// A held handle blocks eviction.
	if err := m.Evict("bob"); !errors.Is(err, ErrBusy) {
		t.Fatalf("Evict held: err = %v, want ErrBusy", err)
	}
	ten.Release()
	if err := m.Evict("bob"); err != nil {
		t.Fatal(err)
	}
	if got := sink.total("bob"); got != 42 {
		t.Fatalf("sink captured %d for bob, want 42", got)
	}
	if st := m.Stats(); st.Active != 0 || st.Evictions != 1 || st.Pooled != 1 {
		t.Fatalf("Stats after evict = %+v, want Active=0 Evictions=1 Pooled=1", st)
	}
	// Re-acquire reuses the pooled tables and starts empty.
	ten2, err := m.Acquire("bob")
	if err != nil {
		t.Fatal(err)
	}
	defer ten2.Release()
	if got := ten2.Sketch().StreamWeight(); got != 0 {
		t.Fatalf("recycled tenant StreamWeight = %d, want 0", got)
	}
	if st := m.Stats(); st.PoolHits != 1 {
		t.Fatalf("Stats = %+v, want PoolHits=1", st)
	}
}

func TestCapacityEvictsIdlest(t *testing.T) {
	sink := &captureSink{}
	m, err := New[int64](Config{MaxCounters: 128, MaxTenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSink(sink)
	clock := time.Unix(1_700_000_000, 0)
	m.setClock(func() time.Time { return clock })

	a, _ := m.Acquire("a")
	_ = a.Update(1, 10)
	a.Release()
	clock = clock.Add(time.Second)
	b, _ := m.Acquire("b")
	_ = b.Update(1, 20)
	b.Release()
	clock = clock.Add(time.Second)

	// Registry is full; "a" is idlest and unreferenced — creating "c"
	// evicts it through the sink.
	c, err := m.Acquire("c")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release()
	if got := sink.total("a"); got != 10 {
		t.Fatalf("sink captured %d for a, want 10", got)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	// Hold both live tenants: the registry is full of referenced
	// tenants, so a fourth id cannot be admitted.
	bb, err := m.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	defer bb.Release()
	if _, err := m.Acquire("d"); !errors.Is(err, ErrLimit) {
		t.Fatalf("Acquire at referenced capacity: err = %v, want ErrLimit", err)
	}
}

func TestIdleTTLEviction(t *testing.T) {
	sink := &captureSink{}
	m, err := New[int64](Config{MaxCounters: 128, MaxTenants: 8, IdleTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSink(sink)
	clock := time.Unix(1_700_000_000, 0)
	m.setClock(func() time.Time { return clock })

	for i, id := range []string{"x", "y"} {
		ten, err := m.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		_ = ten.Update(int64(i), int64(100*(i+1)))
		ten.Release()
	}
	// Keep "z" fresh and "x"/"y" stale.
	clock = clock.Add(2 * time.Minute)
	z, _ := m.Acquire("z")
	_ = z.Update(9, 1)
	z.Release()
	if n := m.EvictIdle(); n != 2 {
		t.Fatalf("EvictIdle = %d, want 2", n)
	}
	if got := sink.total("x"); got != 100 {
		t.Fatalf("sink captured %d for x, want 100", got)
	}
	if got := sink.total("y"); got != 200 {
		t.Fatalf("sink captured %d for y, want 200", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len after TTL sweep = %d, want 1 (z survives)", m.Len())
	}
	// TTL disabled → sweep is a no-op.
	m2, _ := New[int64](Config{MaxTenants: 2})
	ten, _ := m2.Acquire("q")
	ten.Release()
	if n := m2.EvictIdle(); n != 0 {
		t.Fatalf("EvictIdle without TTL = %d, want 0", n)
	}
}

func TestDrainPersistsLiveTenants(t *testing.T) {
	sink := &captureSink{}
	m, err := New[int64](Config{MaxCounters: 128, MaxTenants: 8})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSink(sink)
	for i := 0; i < 3; i++ {
		ten, err := m.Acquire(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		_ = ten.Update(int64(i), int64(i+1)*10)
		ten.Release()
	}
	// An empty tenant drains nothing.
	empty, _ := m.Acquire("empty")
	empty.Release()
	if err := m.Drain(time.Now()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("t%d", i)
		if got, want := sink.total(id), int64(i+1)*10; got != want {
			t.Fatalf("drained %d for %s, want %d", got, id, want)
		}
	}
	if sink.appends != 3 {
		t.Fatalf("sink saw %d appends, want 3 (empty tenant skipped)", sink.appends)
	}
	// Drain does not evict: the registry is intact for the final log line.
	if m.Len() != 4 {
		t.Fatalf("Len after drain = %d, want 4", m.Len())
	}
}

func TestSinkErrRecordedNotFatal(t *testing.T) {
	sink := &captureSink{fail: errors.New("disk full")}
	m, err := New[int64](Config{MaxCounters: 128, MaxTenants: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSink(sink)
	ten, _ := m.Acquire("a")
	_ = ten.Update(1, 1)
	ten.Release()
	if err := m.Evict("a"); err != nil {
		t.Fatalf("Evict must not fail on sink error, got %v", err)
	}
	if err := m.SinkErr(); err == nil || err.Error() != "disk full" {
		t.Fatalf("SinkErr = %v, want disk full", err)
	}
	if m.Len() != 0 {
		t.Fatal("tenant not evicted despite failing sink")
	}
}

func TestSeededTwinsAgreeByteForByte(t *testing.T) {
	mk := func() *Manager[int64] {
		m, err := New[int64](Config{MaxCounters: 256, Shards: 4, Seed: 0xfeed, MaxTenants: 4})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	ops := func(m *Manager[int64]) []byte {
		for _, id := range []string{"p", "q"} {
			ten, err := m.Acquire(id)
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 500; i++ {
				_ = ten.Update(i%37, i+1)
			}
			ten.Release()
		}
		ten, _ := m.Acquire("p")
		defer ten.Release()
		v, err := ten.Sketch().View()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := v.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	ba, bb := ops(a), ops(b)
	if string(ba) != string(bb) {
		t.Fatal("seed-pinned twin managers diverged after identical streams")
	}
}

// TestTenantChurnZeroAlloc is the warm-pool acceptance gate: once the
// pool is primed, a full evict→recreate→ingest cycle allocates nothing.
func TestTenantChurnZeroAlloc(t *testing.T) {
	m, err := New[int64](Config{MaxCounters: 512, Shards: 2, WindowIntervals: 2, MaxTenants: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Prime: one build, one eviction leaves warm tables in the pool.
	ten, err := m.Acquire("churn")
	if err != nil {
		t.Fatal(err)
	}
	_ = ten.Update(1, 1)
	ten.Release()
	if err := m.Evict("churn"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		ten, err := m.Acquire("churn")
		if err != nil {
			t.Fatal(err)
		}
		_ = ten.Update(42, 3)
		ten.Release()
		if err := m.Evict("churn"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("evict→recreate cycle allocates %.1f/op, want 0 (warm pool must recycle)", allocs)
	}
	st := m.Stats()
	if st.PoolHits == 0 {
		t.Fatalf("Stats = %+v: churn loop never hit the warm pool", st)
	}
}

// TestTenantSoakWeightConservation is the acceptance soak: N tenants ×
// concurrent writers × an eviction ticker × scoped TOPK readers, under
// -race. Every unit of successfully acknowledged weight must end up
// either in the tenant's live summary or in the sink's ledger — exact
// conservation, no leakage across recycled tables.
func TestTenantSoakWeightConservation(t *testing.T) {
	const (
		nTenants = 8
		nWriters = 4
		nReaders = 2
		perGoal  = 4000
	)
	sink := &captureSink{}
	m, err := New[int64](Config{MaxCounters: 256, Shards: 2, WindowIntervals: 2, MaxTenants: nTenants})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSink(sink)

	ids := make([]string, nTenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("soak-%d", i)
	}
	var written [nTenants]atomic.Int64
	var writers, loopers sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < nWriters; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < perGoal; n++ {
				idx := rng.Intn(nTenants)
				ten, err := m.Acquire(ids[idx])
				if err != nil {
					t.Error(err)
					return
				}
				weight := int64(rng.Intn(9) + 1)
				if err := ten.Update(rng.Int63n(64), weight); err != nil {
					ten.Release()
					t.Error(err)
					return
				}
				// The handle is still held, so this weight cannot be
				// recycled out from under the ledger before Release.
				written[idx].Add(weight)
				ten.Release()
			}
		}(int64(w) + 1)
	}
	for r := 0; r < nReaders; r++ {
		loopers.Add(1)
		go func(seed int64) {
			defer loopers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ten, err := m.Acquire(ids[rng.Intn(nTenants)])
				if err != nil {
					t.Error(err)
					return
				}
				v, err := ten.Sketch().View()
				if err == nil {
					_ = v.TopK(5)
				}
				if win := ten.Windowed(); win != nil {
					_ = win.TopK(3)
				}
				ten.Release()
			}
		}(int64(r) + 100)
	}
	// The eviction ticker: random explicit evictions racing the
	// writers. ErrBusy and ErrUnknown are the expected steady state.
	loopers.Add(1)
	go func() {
		defer loopers.Done()
		rng := rand.New(rand.NewSource(999))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Evict(ids[rng.Intn(nTenants)]); err != nil &&
				!errors.Is(err, ErrBusy) && !errors.Is(err, ErrUnknown) {
				t.Error(err)
				return
			}
			m.RotateAll()
		}
	}()

	// Writers run a fixed workload; the readers and the eviction ticker
	// loop until told to stop.
	writers.Wait()
	close(stop)
	loopers.Wait()

	// Flush everything through the sink and settle the ledger.
	if err := m.SinkErr(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := m.Evict(id); err != nil && !errors.Is(err, ErrUnknown) {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		if got, want := sink.total(id), written[i].Load(); got != want {
			t.Fatalf("tenant %s: conserved %d, wrote %d (leak or cross-tenant bleed)", id, got, want)
		}
	}
	st := m.Stats()
	if st.Active != 0 {
		t.Fatalf("Stats after final sweep = %+v, want Active=0", st)
	}
	t.Logf("soak: created=%d evictions=%d poolHits=%d appends=%d",
		st.Created, st.Evictions, st.PoolHits, sink.appends)
}

func TestStartEvictingAndRotating(t *testing.T) {
	m, err := New[int64](Config{MaxCounters: 64, WindowIntervals: 2, MaxTenants: 4, IdleTTL: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ten, _ := m.Acquire("tick")
	_ = ten.Update(1, 1)
	ten.Release()
	stopEvict := m.StartEvicting(time.Millisecond)
	defer stopEvict()
	deadline := time.Now().Add(2 * time.Second)
	for m.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("TTL ticker never evicted the idle tenant")
		}
		time.Sleep(time.Millisecond)
	}
	stopEvict()
	stopEvict() // idempotent

	ten2, _ := m.Acquire("rot")
	defer ten2.Release()
	_ = ten2.Update(1, 5)
	stopRot := m.StartRotating(time.Millisecond)
	defer stopRot()
	deadline = time.Now().Add(2 * time.Second)
	for ten2.Windowed().Rotations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rotation ticker never advanced the tenant window")
		}
		time.Sleep(time.Millisecond)
	}
	stopRot()
	stopRot()
}
