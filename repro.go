package repro

import "repro/freq"

// The root package re-exports the freq facade (generic aliases are fully
// supported as of Go 1.24), so small programs can import just "repro".
// New API surface should be added to repro/freq and mirrored here only
// when it is part of the everyday vocabulary.

// Sketch is a weighted frequent-items summary over items of type T.
type Sketch[T comparable] = freq.Sketch[T]

// Concurrent is the goroutine-safe sharded sketch.
type Concurrent[T comparable] = freq.Concurrent[T]

// Signed is the turnstile (deletion-capable) two-sketch composition.
type Signed[T comparable] = freq.Signed[T]

// Writer is the per-goroutine buffered front-end for Concurrent — the
// batched ingestion hot path.
type Writer[T comparable] = freq.Writer[T]

// Windowed is the sliding-window heavy-hitters summary: a rotating ring
// of per-interval sketches.
type Windowed[T comparable] = freq.Windowed[T]

// ConcurrentWindowed is the goroutine-safe sliding-window summary.
type ConcurrentWindowed[T comparable] = freq.ConcurrentWindowed[T]

// Row is one frequent-item query result.
type Row[T comparable] = freq.Row[T]

// Queryable is the uniform read-side interface served by every
// front-end, local or remote.
type Queryable[T comparable] = freq.Queryable[T]

// Query is the composable iterator-based read over any Queryable.
type Query[T comparable] = freq.Query[T]

// View is the immutable epoch-cached read view of a Concurrent sketch.
type View[T comparable] = freq.View[T]

// Order selects a Query's row ordering.
type Order = freq.Order

// Row orderings, re-exported.
const (
	OrderEstimateDesc = freq.OrderEstimateDesc
	OrderEstimateAsc  = freq.OrderEstimateAsc
	OrderItem         = freq.OrderItem
	OrderNone         = freq.OrderNone
)

// ErrorType selects heavy-hitter extraction semantics.
type ErrorType = freq.ErrorType

// Option configures a sketch at construction.
type Option = freq.Option

// SerDe customizes item encoding for serialization of sketches over
// types without a built-in codec.
type SerDe[T comparable] = freq.SerDe[T]

// Heavy-hitter semantics, re-exported.
const (
	NoFalsePositives = freq.NoFalsePositives
	NoFalseNegatives = freq.NoFalseNegatives
)

// Sentinel errors, re-exported.
var (
	ErrTooFewCounters  = freq.ErrTooFewCounters
	ErrTooManyCounters = freq.ErrTooManyCounters
	ErrBadQuantile     = freq.ErrBadQuantile
	ErrBadSampleSize   = freq.ErrBadSampleSize
	ErrBadShards       = freq.ErrBadShards
	ErrNegativeWeight  = freq.ErrNegativeWeight
	ErrCorrupt         = freq.ErrCorrupt
	ErrNoSerDe         = freq.ErrNoSerDe
	ErrLengthMismatch  = freq.ErrLengthMismatch
	ErrBadBatchSize    = freq.ErrBadBatchSize
	ErrWriterClosed    = freq.ErrWriterClosed
	ErrBadIntervals    = freq.ErrBadIntervals
)

// Construction options, re-exported.
var (
	WithQuantile   = freq.WithQuantile
	WithSMIN       = freq.WithSMIN
	WithSampleSize = freq.WithSampleSize
	WithSeed       = freq.WithSeed
	WithShards     = freq.WithShards
	WithoutGrowth  = freq.WithoutGrowth
	WithBatchSize  = freq.WithBatchSize
)

// New returns a sketch tracking up to k counters; see freq.New.
func New[T comparable](k int, opts ...Option) (*Sketch[T], error) {
	return freq.New[T](k, opts...)
}

// NewConcurrent returns a goroutine-safe sharded sketch; see
// freq.NewConcurrent.
func NewConcurrent[T comparable](k int, opts ...Option) (*Concurrent[T], error) {
	return freq.NewConcurrent[T](k, opts...)
}

// NewWriter returns a buffered writer feeding c; see freq.NewWriter.
func NewWriter[T comparable](c *Concurrent[T], opts ...Option) (*Writer[T], error) {
	return freq.NewWriter(c, opts...)
}

// NewSigned returns a turnstile-capable sketch pair; see freq.NewSigned.
func NewSigned[T comparable](k int, opts ...Option) (*Signed[T], error) {
	return freq.NewSigned[T](k, opts...)
}

// NewWindowed returns a sliding window of per-interval sketches; see
// freq.NewWindowed.
func NewWindowed[T comparable](k, intervals int, opts ...Option) (*Windowed[T], error) {
	return freq.NewWindowed[T](k, intervals, opts...)
}

// NewConcurrentWindowed returns a goroutine-safe sliding window; see
// freq.NewConcurrentWindowed.
func NewConcurrentWindowed[T comparable](k, intervals int, opts ...Option) (*ConcurrentWindowed[T], error) {
	return freq.NewConcurrentWindowed[T](k, intervals, opts...)
}

// From starts a composable query over any Queryable; see freq.From.
func From[T comparable](src Queryable[T]) *Query[T] {
	return freq.From[T](src)
}

// TailBound returns the a-priori §2.3.2 error guarantee; see
// freq.TailBound.
func TailBound(k, j int, residualWeight int64) float64 {
	return freq.TailBound(k, j, residualWeight)
}
