// Package repro is a from-scratch Go reproduction of Anderson, Bevin,
// Lang, Liberty, Rhodes, and Thaler, "A High-Performance Algorithm for
// Identifying Frequent Items in Data Streams" (IMC 2017) — the weighted
// Misra–Gries variant deployed as the Apache DataSketches Frequent Items
// sketch.
//
// The implementation lives under internal/:
//
//   - internal/core — the paper's algorithm (SMED/SMIN and any decrement
//     quantile), with merging, serialization, heavy-hitter queries, and a
//     turnstile wrapper.
//   - internal/items — the generic-item (any comparable type) variant.
//   - internal/mg, internal/spacesaving, internal/sketches, internal/lossy
//     — every baseline the paper's evaluation compares against.
//   - internal/hashmap, internal/qselect, internal/xrand — the §2.3.3
//     data-structure substrate.
//   - internal/streamgen, internal/exact, internal/experiments — workload
//     generation, ground truth, and the harness regenerating Figures 1-4.
//   - internal/sampling, internal/hhh, internal/entropy — the §5/§6
//     extensions.
//
// bench_test.go in this directory holds one benchmark per evaluation
// figure plus the ablations called out in DESIGN.md. Binaries are under
// cmd/ and runnable examples under examples/.
package repro
