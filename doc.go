// Package repro is a from-scratch Go reproduction of Anderson, Bevin,
// Lang, Liberty, Rhodes, and Thaler, "A High-Performance Algorithm for
// Identifying Frequent Items in Data Streams" (IMC 2017) — the weighted
// Misra–Gries variant deployed as the Apache DataSketches Frequent Items
// sketch — grown into a production-shaped system behind one public API.
//
// # Public API
//
// Everything downstream code needs lives in the freq package tree; this
// root package re-exports the core names for convenience, so
// repro.New[uint64](k) and freq.New[uint64](k) are interchangeable.
//
//   - repro/freq — the generic facade: Sketch[T] (fast parallel-array
//     backend for int64/uint64, map backend for any other comparable
//     type), Concurrent[T] (sharded, goroutine-safe, with epoch-cached
//     snapshot-isolated read views), Signed[T] (turnstile streams with
//     deletions), the unified read layer (Queryable[T] and the
//     iterator-based Query builder), functional-options construction,
//     sentinel errors, and binary/streaming serialization.
//   - repro/freq/stream — workload generation and stream file IO.
//   - repro/freq/server — the summary as a line-protocol TCP service,
//     plus the Cluster fan-out client that merges a fleet of servers
//     into one queryable summary.
//   - repro/freq/experiments — regenerates the paper's evaluation
//     figures.
//
// # Implementation
//
// The research internals stay under internal/, reachable only through
// the facade:
//
//   - internal/core — the paper's algorithm (SMED/SMIN and any decrement
//     quantile), with merging, serialization, heavy-hitter queries, and a
//     turnstile wrapper.
//   - internal/items — the generic-item (any comparable type) variant.
//   - internal/sharded — the lock-per-shard concurrent composition.
//   - internal/mg, internal/spacesaving, internal/sketches,
//     internal/lossy — every baseline the paper's evaluation compares
//     against.
//   - internal/hashmap, internal/qselect, internal/xrand — the §2.3.3
//     data-structure substrate.
//   - internal/streamgen, internal/exact, internal/experiments —
//     workload generation, ground truth, and the harness regenerating
//     Figures 1-4.
//   - internal/sampling, internal/hhh, internal/entropy — the §5/§6
//     extensions.
//
// Binaries are under cmd/ (freq, freqd, genstream, experiments) and
// runnable examples under examples/.
package repro
