// HHH: hierarchical heavy hitters over IPv4 prefixes (§1.2, §6) — find
// not just the heavy source addresses but the heavy subnets, discounting
// traffic already attributed to reported descendants. A synthetic attack
// scenario hides a distributed sender inside one /16 so that no single
// /32 is heavy but the aggregate is unmissable.
//
// The hierarchy is built entirely from the public freq API: one sketch
// per prefix level, updates fan out to every ancestor prefix, and the
// query walks the levels bottom-up with descendant discounting — the
// downstream-application substitution the paper proposes in §6.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"repro/freq"
	"repro/freq/stream"
)

// levels are the conventional IPv4 aggregation levels.
var levels = []int{8, 16, 24, 32}

// hierarchy keeps one weighted frequent-items sketch per prefix level.
type hierarchy struct {
	sketches []*freq.Sketch[uint64]
	streamN  int64
}

func newHierarchy(k int) (*hierarchy, error) {
	h := &hierarchy{sketches: make([]*freq.Sketch[uint64], len(levels))}
	for i := range levels {
		sk, err := freq.New[uint64](k)
		if err != nil {
			return nil, err
		}
		h.sketches[i] = sk
	}
	return h, nil
}

// prefixID packs a masked address and its level into a sketch item.
func prefixID(addr uint32, prefixLen int) uint64 {
	masked := addr &^ (1<<(32-uint(prefixLen)) - 1)
	return uint64(prefixLen)<<32 | uint64(masked)
}

func (h *hierarchy) update(addr uint32, weight int64) error {
	for i, l := range levels {
		if err := h.sketches[i].Update(prefixID(addr, l), weight); err != nil {
			return err
		}
	}
	h.streamN += weight
	return nil
}

// result is one hierarchical heavy hitter: a prefix whose traffic still
// exceeds the threshold after discounting reported descendants.
type result struct {
	prefix     uint32
	prefixLen  int
	estimate   int64
	discounted int64
}

func (r result) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d est=%d disc=%d",
		byte(r.prefix>>24), byte(r.prefix>>16), byte(r.prefix>>8), byte(r.prefix),
		r.prefixLen, r.estimate, r.discounted)
}

// query walks levels from most to least specific; a prefix is reported
// when its estimate minus the mass claimed by reported descendants meets
// the threshold, and claimed mass propagates to the parent level.
func (h *hierarchy) query(threshold int64) []result {
	if threshold < 1 {
		threshold = 1
	}
	var results []result
	discount := make(map[uint64]int64)
	for i := len(levels) - 1; i >= 0; i-- {
		rows := h.sketches[i].FrequentItemsAboveThreshold(threshold-1, freq.NoFalseNegatives)
		var reported []result
		for _, row := range rows {
			disc := row.Estimate - discount[row.Item]
			if disc >= threshold {
				reported = append(reported, result{
					prefix:     uint32(row.Item),
					prefixLen:  levels[i],
					estimate:   row.Estimate,
					discounted: disc,
				})
			}
		}
		sort.Slice(reported, func(a, b int) bool { return reported[a].estimate > reported[b].estimate })
		results = append(results, reported...)
		if i == 0 {
			break
		}
		parentLen := levels[i-1]
		next := make(map[uint64]int64)
		claimed := make(map[uint64]bool, len(reported))
		for _, r := range reported {
			claimed[prefixID(r.prefix, levels[i])] = true
			next[prefixID(r.prefix, parentLen)] += r.estimate
		}
		for id, d := range discount {
			if !claimed[id] {
				next[prefixID(uint32(id), parentLen)] += d
			}
		}
		discount = next
	}
	return results
}

func main() {
	h, err := newHierarchy(1024)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(7, 7))

	// Background traffic: zipf-popular individual sources.
	background, err := stream.PacketTrace(stream.TraceConfig{
		Packets:         400_000,
		DistinctSources: 1 << 16,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, pkt := range background {
		if err := h.update(uint32(pkt.Item), pkt.Weight); err != nil {
			log.Fatal(err)
		}
	}

	// The hidden aggregate: 10.77.0.0/16 sends 15% of total bytes spread
	// over thousands of distinct low-rate hosts.
	attackNet := uint32(10)<<24 | uint32(77)<<16
	attackWeight := h.streamN * 15 / 85
	perPacket := int64(12000) // 1500 B in bits
	for sent := int64(0); sent < attackWeight; sent += perPacket {
		host := attackNet | uint32(rng.Uint64N(1<<16))
		if err := h.update(host, perPacket); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("total traffic: %d bits\n\n", h.streamN)
	fmt.Println("hierarchical heavy hitters above 3% of traffic:")
	results := h.query(int64(0.03 * float64(h.streamN)))
	for _, r := range results {
		fmt.Printf("  %v\n", r)
	}

	found := false
	for _, r := range results {
		if r.prefixLen == 16 && r.prefix == attackNet {
			found = true
			fmt.Printf("\n>> the distributed sender 10.77.0.0/16 is reported at the /16 level\n")
			fmt.Printf(">> (its busiest single host is far below the per-address threshold)\n")
		}
	}
	if !found {
		fmt.Println("\n>> attack prefix not isolated at /16 (try more counters)")
	}
}
