// HHH: hierarchical heavy hitters over IPv4 prefixes (§1.2, §6) — find
// not just the heavy source addresses but the heavy subnets, discounting
// traffic already attributed to reported descendants. A synthetic attack
// scenario hides a distributed sender inside one /16 so that no single
// /32 is heavy but the aggregate is unmissable.
package main

import (
	"fmt"
	"log"

	"repro/internal/hhh"
	"repro/internal/streamgen"
	"repro/internal/xrand"
)

func main() {
	h, err := hhh.New(hhh.Config{MaxCounters: 1024, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	rng := xrand.NewSplitMix64(7)

	// Background traffic: zipf-popular individual sources.
	background, err := streamgen.PacketTrace(streamgen.TraceConfig{
		Packets:         400_000,
		DistinctSources: 1 << 16,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, pkt := range background {
		if err := h.Update(uint32(pkt.Item), pkt.Weight); err != nil {
			log.Fatal(err)
		}
	}

	// The hidden aggregate: 10.77.0.0/16 sends 15% of total bytes spread
	// over thousands of distinct low-rate hosts.
	attackNet := uint32(10)<<24 | uint32(77)<<16
	attackWeight := h.StreamWeight() * 15 / 85
	perPacket := int64(12000) // 1500 B in bits
	for sent := int64(0); sent < attackWeight; sent += perPacket {
		host := attackNet | uint32(rng.Uint64n(1<<16))
		if err := h.Update(host, perPacket); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("total traffic: %d bits\n\n", h.StreamWeight())
	fmt.Println("hierarchical heavy hitters above 3% of traffic:")
	results := h.QueryFraction(0.03)
	for _, r := range results {
		fmt.Printf("  %v\n", r)
	}

	found := false
	for _, r := range results {
		if r.PrefixLen == 16 && r.Prefix == attackNet {
			found = true
			fmt.Printf("\n>> the distributed sender 10.77.0.0/16 is reported at the /16 level\n")
			fmt.Printf(">> (its busiest single host is far below the per-address threshold)\n")
		}
	}
	if !found {
		fmt.Println("\n>> attack prefix not isolated at /16 (try more counters)")
	}
}
