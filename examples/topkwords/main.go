// Topkwords: weighted text analysis with the generic sketch — the
// tf-idf motivation of §1.2, where each occurrence of a term carries an
// importance weight rather than a unit count. Items here are strings,
// exercising the generic sketch rather than the int64-optimized core.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/freq"
)

// Corpus statistics drive idf; the "stream" is every word occurrence of
// every document, weighted by scaled idf so that globally common words
// contribute little no matter how often they appear.
var docs = []string{
	"the stream of packets flows through the router and the switch",
	"frequent items in the stream reveal the heavy hitters of the network",
	"the sketch summarizes the stream with counters and the sketch merges",
	"heavy hitters dominate traffic and heavy flows exhaust the counters",
	"misra and gries decrement counters while space saving reassigns counters",
	"the router drops packets when the heavy flows exhaust the switch",
	"weighted updates let the sketch track bytes instead of packets",
	"merging sketches of shards yields the sketch of the union stream",
}

func main() {
	// Document frequencies for idf.
	df := map[string]int{}
	for _, d := range docs {
		seen := map[string]bool{}
		for _, w := range strings.Fields(d) {
			if !seen[w] {
				df[w]++
				seen[w] = true
			}
		}
	}
	idf := func(w string) int64 {
		// Scaled smooth idf: weight 1 for words in every document, larger
		// for rare words; integer weights suit the counter summary.
		v := math.Log(float64(1+len(docs))/float64(1+df[w])) + 1
		return int64(v * 100)
	}

	sketch, err := freq.New[string](32)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range docs {
		for _, w := range strings.Fields(d) {
			if err := sketch.Update(w, idf(w)); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("tracked %d terms over total tf-idf weight %d (max err %d)\n\n",
		sketch.NumActive(), sketch.StreamWeight(), sketch.MaximumError())
	fmt.Println("top terms by accumulated tf-idf weight:")
	fmt.Printf("%-12s %10s %10s %10s\n", "term", "estimate", "lower", "upper")
	for _, row := range sketch.TopK(12) {
		fmt.Printf("%-12s %10d %10d %10d\n", row.Item, row.Estimate, row.LowerBound, row.UpperBound)
	}

	// "the" has huge term frequency but idf ~1 per occurrence; rare
	// technical terms surface above it despite far fewer occurrences.
	fmt.Printf("\npoint queries: the=%d, sketch=%d, counters=%d\n",
		sketch.Estimate("the"), sketch.Estimate("sketch"), sketch.Estimate("counters"))
}
