// Turnstile: handling deletions with the two-sketch recipe from the
// paper's §1.3 Note — one summary for insertions, one for deletion
// magnitudes, estimates formed as the difference (freq.Signed). The
// scenario: tracking net ad spend per advertiser where charges arrive as
// positive updates and refunds/chargebacks as negative ones.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/freq"
)

func main() {
	sketch, err := freq.NewSigned[uint64](512)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(2024, 7))
	truth := map[uint64]int64{}

	// 200k charge events across 10k advertisers (Zipf-ish via the product
	// of two uniforms), with ~10% of charge volume later refunded.
	for i := 0; i < 200_000; i++ {
		adv := (rng.Uint64N(100)*rng.Uint64N(100)*0x9e3779b97f4a7c15 + 1) % 10_000
		charge := int64(rng.Uint64N(500)) + 1
		sketch.Update(adv, charge)
		truth[adv] += charge
		if rng.Float64() < 0.10 {
			refund := charge / 2
			if refund > 0 {
				sketch.Update(adv, -refund)
				truth[adv] -= refund
			}
		}
	}

	fmt.Printf("net spend N = %d, gross volume Σ|Δ| = %d\n",
		sketch.NetWeight(), sketch.GrossWeight())
	fmt.Printf("error band (proportional to gross, §1.3 Note): ±%d\n\n",
		sketch.MaximumError())

	// Point queries bracket the signed truth.
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "advertiser", "estimate", "lower", "upper", "true")
	shown := 0
	violations := 0
	for adv, want := range truth {
		lb, ub := sketch.LowerBound(adv), sketch.UpperBound(adv)
		if lb > want || ub < want {
			violations++
		}
		if want > 40_000 && shown < 8 {
			fmt.Printf("%-12d %12d %12d %12d %12d\n", adv, sketch.Estimate(adv), lb, ub, want)
			shown++
		}
	}
	fmt.Printf("\nbracketing violations across %d advertisers: %d\n", len(truth), violations)
}
