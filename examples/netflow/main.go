// Netflow: the paper's headline workload (§1.2, §4.1) — track the total
// traffic volume per source IP over a packet stream with a summary 70x
// smaller than exact counting, and verify the bracketing guarantees
// against ground truth.
package main

import (
	"fmt"
	"log"

	"repro/freq"
	"repro/freq/stream"
)

func main() {
	// A synthetic stand-in for the CAIDA trace: 2M packets from ~260k
	// distinct sources; item = source IPv4, weight = packet size in bits.
	trace, err := stream.PacketTrace(stream.TraceConfig{
		Packets:         2_000_000,
		DistinctSources: 1 << 18,
		Alpha:           1.1,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}

	sketch, err := freq.New[int64](1024)
	if err != nil {
		log.Fatal(err)
	}
	truth := map[int64]int64{} // exact counts, for demonstration only
	for _, pkt := range trace {
		if err := sketch.Update(pkt.Item, pkt.Weight); err != nil {
			log.Fatal(err)
		}
		truth[pkt.Item] += pkt.Weight
	}

	fmt.Println(sketch)
	exactBytes := 40 * len(truth) // ~8 key + 8 value + map overhead per entry
	fmt.Printf("exact solution would use ~%d KB; sketch uses %d KB (%.0fx smaller)\n\n",
		exactBytes/1024, sketch.MaxSizeBytes()/1024,
		float64(exactBytes)/float64(sketch.MaxSizeBytes()))

	fmt.Println("top talkers by traffic volume (bits):")
	fmt.Printf("%-18s %14s %14s %9s\n", "source", "estimate", "true", "err")
	for _, row := range sketch.TopK(10) {
		fmt.Printf("%-18s %14d %14d %9d\n",
			ipString(uint32(row.Item)), row.Estimate, truth[row.Item], row.Estimate-truth[row.Item])
	}

	// Every estimate respects the bracketing guarantee.
	violations := 0
	for item, want := range truth {
		if sketch.LowerBound(item) > want || sketch.UpperBound(item) < want {
			violations++
		}
	}
	fmt.Printf("\nbracketing violations over %d distinct sources: %d\n",
		len(truth), violations)
	fmt.Printf("max possible error (offset): %d bits = %.4f%% of N\n",
		sketch.MaximumError(),
		100*float64(sketch.MaximumError())/float64(sketch.StreamWeight()))
}

func ipString(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}
