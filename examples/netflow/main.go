// Netflow: the paper's headline workload (§1.2, §4.1) — track the total
// traffic volume per source IP over a packet stream with a summary 70x
// smaller than exact counting, and verify the bracketing guarantees
// against ground truth.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/streamgen"
)

func main() {
	// A synthetic stand-in for the CAIDA trace: 2M packets from ~260k
	// distinct sources; item = source IPv4, weight = packet size in bits.
	trace, err := streamgen.PacketTrace(streamgen.TraceConfig{
		Packets:         2_000_000,
		DistinctSources: 1 << 18,
		Alpha:           1.1,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}

	sketch, err := core.New(1024)
	if err != nil {
		log.Fatal(err)
	}
	oracle := exact.New() // ground truth, for demonstration only
	for _, pkt := range trace {
		if err := sketch.Update(pkt.Item, pkt.Weight); err != nil {
			log.Fatal(err)
		}
		oracle.Update(pkt.Item, pkt.Weight)
	}

	fmt.Println(sketch)
	fmt.Printf("exact solution would use ~%d KB; sketch uses %d KB (%.0fx smaller)\n\n",
		oracle.SizeBytes()/1024, sketch.MaxSizeBytes()/1024,
		float64(oracle.SizeBytes())/float64(sketch.MaxSizeBytes()))

	fmt.Println("top talkers by traffic volume (bits):")
	fmt.Printf("%-18s %14s %14s %9s\n", "source", "estimate", "true", "err")
	for _, row := range sketch.TopK(10) {
		truth := oracle.Freq(row.Item)
		fmt.Printf("%-18s %14d %14d %9d\n",
			ipString(uint32(row.Item)), row.Estimate, truth, row.Estimate-truth)
	}

	// Every estimate respects the bracketing guarantee.
	violations := 0
	oracle.Range(func(item, truth int64) bool {
		if sketch.LowerBound(item) > truth || sketch.UpperBound(item) < truth {
			violations++
		}
		return true
	})
	fmt.Printf("\nbracketing violations over %d distinct sources: %d\n",
		oracle.NumItems(), violations)
	fmt.Printf("max possible error (offset): %d bits = %.4f%% of N\n",
		sketch.MaximumError(),
		100*float64(sketch.MaximumError())/float64(sketch.StreamWeight()))
}

func ipString(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}
