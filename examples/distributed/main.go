// Distributed: the §3 mergeability scenario, end to end over the wire —
// partition a stream across three freqd nodes, summarize each partition
// independently, then answer global queries through server.Cluster: the
// coordinator pulls each node's serialized summary concurrently (SNAP),
// merges them with Algorithm 5, and serves the same freq.Queryable
// interface a local sketch does. One query surface, local or fleet.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"repro/freq"
	"repro/freq/server"
	"repro/freq/stream"
)

const (
	nodes = 3
	k     = 2048
)

func main() {
	updates, err := stream.ZipfStream(1.05, 1<<16, 2_000_000, 10_000, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Boot three in-process freqd nodes on loopback ports. In production
	// these are separate machines; the protocol is the same TCP line
	// protocol either way.
	addrs := make([]string, nodes)
	servers := make([]*server.Server, nodes)
	for i := range servers {
		servers[i], addrs[i] = startNode()
	}

	// Each worker ships its partition to its node in UB wire batches.
	var wg sync.WaitGroup
	for w := 0; w < nodes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shipPartition(addrs[w], updates, w)
		}(w)
	}
	wg.Wait()

	// Coordinator: one fan-out client over the fleet. Refresh pulls and
	// merges every node's summary; queries answer from the merged view.
	cluster, err := server.DialCluster[int64](addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Refresh(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %d node summaries: N=%d, err=%d\n",
		cluster.Nodes(), cluster.StreamWeight(), cluster.MaximumError())

	// Compare against a single sketch over the unpartitioned stream and
	// against ground truth.
	single, err := freq.New[int64](k)
	if err != nil {
		log.Fatal(err)
	}
	truth := map[int64]int64{}
	var truthN int64
	for _, u := range updates {
		if err := single.Update(u.Item, u.Weight); err != nil {
			log.Fatal(err)
		}
		truth[u.Item] += u.Weight
		truthN += u.Weight
	}
	maxErr := func(q freq.Queryable[int64]) int64 {
		var worst int64
		for item, want := range truth {
			if d := q.Estimate(item) - want; d > worst {
				worst = d
			} else if d := want - q.Estimate(item); d > worst {
				worst = d
			}
		}
		return worst
	}
	fmt.Printf("\nmax error: cluster=%d single=%d theorem-5 bound=%.0f\n",
		maxErr(cluster), maxErr(single), freq.TailBound(k, 0, truthN))

	// The same Query builder runs against the fleet and the local sketch.
	fmt.Println("\ntop items, cluster fan-out vs single-pass vs truth:")
	fmt.Printf("%12s %12s %12s %12s\n", "item", "cluster", "single", "true")
	for _, row := range cluster.Query().Limit(8).Collect() {
		fmt.Printf("%12d %12d %12d %12d\n",
			row.Item, row.Estimate, single.Estimate(row.Item), truth[row.Item])
	}

	for _, srv := range servers {
		srv.Close()
	}
}

// startNode boots one in-process freqd node on a loopback port and
// returns it with its listen address.
func startNode() (*server.Server, string) {
	srv, err := server.New(server.Config{MaxCounters: k, Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// shipPartition sends every nodes-th update starting at offset w to the
// node at addr in one wire batch.
func shipPartition(addr string, updates []stream.Update, w int) {
	c, err := server.Dial[int64](addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	var items, weights []int64
	for i := w; i < len(updates); i += nodes {
		items = append(items, updates[i].Item)
		weights = append(weights, updates[i].Weight)
	}
	if err := c.UpdateBatch(items, weights); err != nil {
		log.Fatal(err)
	}
}
