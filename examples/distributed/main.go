// Distributed: the §3 mergeability scenario — partition a stream over
// parallel workers, summarize each partition independently, ship the
// serialized summaries to a coordinator, and merge them with Algorithm 5
// into a summary of the whole stream.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"repro/freq"
	"repro/freq/stream"
)

const (
	workers = 8
	k       = 2048
)

func main() {
	updates, err := stream.ZipfStream(1.05, 1<<16, 2_000_000, 10_000, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Each worker summarizes its shard. Sketches draw independent hash
	// seeds, so the §3.2 shared-hash-function merge hazard never arises.
	blobs := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sk, err := freq.New[int64](k)
			if err != nil {
				log.Fatal(err)
			}
			for i := w; i < len(updates); i += workers {
				if err := sk.Update(updates[i].Item, updates[i].Weight); err != nil {
					log.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if _, err := sk.WriteTo(&buf); err != nil {
				log.Fatal(err)
			}
			blobs[w] = buf.Bytes()
		}(w)
	}
	wg.Wait()

	// Coordinator: deserialize and merge in arbitrary order. Merging is
	// in place — no scratch table, no new summary (§3.2).
	var merged *freq.Sketch[int64]
	totalBytes := 0
	for _, blob := range blobs {
		totalBytes += len(blob)
		sk, err := freq.New[int64](k)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sk.ReadFrom(bytes.NewReader(blob)); err != nil {
			log.Fatal(err)
		}
		if merged == nil {
			merged = sk
		} else {
			merged.Merge(sk)
		}
	}
	fmt.Printf("merged %d summaries (%d bytes shipped total)\n", workers, totalBytes)
	fmt.Println(merged)

	// Compare against a single sketch over the unpartitioned stream and
	// against ground truth.
	single, err := freq.New[int64](k)
	if err != nil {
		log.Fatal(err)
	}
	truth := map[int64]int64{}
	var truthN int64
	for _, u := range updates {
		if err := single.Update(u.Item, u.Weight); err != nil {
			log.Fatal(err)
		}
		truth[u.Item] += u.Weight
		truthN += u.Weight
	}
	maxErr := func(sk *freq.Sketch[int64]) int64 {
		var worst int64
		for item, want := range truth {
			if d := sk.Estimate(item) - want; d > worst {
				worst = d
			} else if d := want - sk.Estimate(item); d > worst {
				worst = d
			}
		}
		return worst
	}
	fmt.Printf("\nmax error: merged=%d single=%d theorem-5 bound=%.0f\n",
		maxErr(merged), maxErr(single), freq.TailBound(k, 0, truthN))

	fmt.Println("\ntop items, merged vs single-pass vs truth:")
	fmt.Printf("%12s %12s %12s %12s\n", "item", "merged", "single", "true")
	for _, row := range merged.TopK(8) {
		fmt.Printf("%12d %12d %12d %12d\n",
			row.Item, row.Estimate, single.Estimate(row.Item), truth[row.Item])
	}
}
