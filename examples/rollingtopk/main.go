// Rolling top-k: a sliding window of per-interval sketches answering
// "who are the top talkers over the last N seconds?" — the freq.Windowed
// workload. The demo simulates a traffic monitor where the hot flow
// changes every few "seconds": each simulated second ingests an
// interval's worth of flows and rotates the ring, and the rolling top-3
// shows old hot flows aging out of the window while an all-time sketch
// would remember them forever.
//
// Rotation here is manual (deterministic output); a live collector
// attaches a wall-clock driver instead:
//
//	cw, _ := freq.NewConcurrentWindowed[uint64](4096, 60)
//	stop := cw.StartRotating(time.Second)
//	defer stop()
package main

import (
	"fmt"
	"log"

	"repro/freq"
)

func main() {
	const (
		k         = 256 // counters per interval
		intervals = 4   // the window covers the last 4 seconds
	)
	wd, err := freq.NewWindowed[uint64](k, intervals)
	if err != nil {
		log.Fatal(err)
	}

	// One entry per simulated second: a hot flow dominating that second
	// plus steady background flows. Flow 1001 is hot early and then goes
	// quiet — watch it drop out of the rolling top-3 once the window
	// slides past second 3.
	seconds := []struct {
		hot    uint64
		weight int64
	}{
		{1001, 9000}, {1001, 9000}, {1001, 9000},
		{2002, 7000}, {2002, 7000},
		{3003, 5000}, {3003, 5000}, {3003, 5000},
	}
	for sec, traffic := range seconds {
		if sec > 0 {
			// A new second begins: the oldest interval's sketch is
			// recycled in place as the new head — no allocation.
			wd.Rotate()
		}
		// The hot flow, plus background flows 1..50 at 100 bytes each,
		// ingested through the batched hot path.
		items := []uint64{traffic.hot}
		weights := []int64{traffic.weight}
		for f := uint64(1); f <= 50; f++ {
			items = append(items, f)
			weights = append(weights, 100)
		}
		if err := wd.UpdateWeightedBatch(items, weights); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("second %d (window = last %d intervals, N=%d):\n",
			sec+1, wd.Intervals(), wd.StreamWeight())
		for i, r := range wd.TopK(3) {
			fmt.Printf("  %d. flow %-6d ~%d bytes\n", i+1, r.Item, r.Estimate)
		}
	}

	// Window-scoped queries: the same Query/TopK surface over any suffix
	// of the window. The last 2 intervals no longer contain flow 2002.
	fmt.Printf("\nlast 2 intervals only: ")
	for _, r := range wd.Last(2).TopK(2) {
		fmt.Printf("flow %d (~%d) ", r.Item, r.Estimate)
	}
	fmt.Println()
	fmt.Printf("flow 1001 estimate, full window:  %d\n", wd.Estimate(1001))
	fmt.Printf("flow 3003 estimate, full window:  %d\n", wd.Estimate(3003))
}
