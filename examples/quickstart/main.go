// Quickstart: create a sketch, feed weighted updates, query estimates and
// extract heavy hitters — the whole public API surface in one file.
package main

import (
	"fmt"
	"log"

	"repro/freq"
)

func main() {
	// A sketch with up to 64 tracked counters. The summary costs 24*64
	// bytes at full size regardless of how many distinct items the stream
	// contains.
	sketch, err := freq.New[uint64](64)
	if err != nil {
		log.Fatal(err)
	}

	// Weighted updates: (item, weight). Think "user 7 sent 512 bytes".
	updates := []struct {
		item   uint64
		weight int64
	}{
		{7, 512}, {7, 2048}, {42, 100}, {7, 4096}, {42, 300}, {1000, 1},
	}
	for _, u := range updates {
		if err := sketch.Update(u.item, u.weight); err != nil {
			log.Fatal(err)
		}
	}
	// Tiny streams fit entirely in the counters, so estimates are exact
	// and the error band is zero.
	fmt.Println(sketch)
	fmt.Printf("item 7:    estimate=%d, bounds=[%d, %d]\n",
		sketch.Estimate(7), sketch.LowerBound(7), sketch.UpperBound(7))
	fmt.Printf("item 42:   estimate=%d\n", sketch.Estimate(42))
	fmt.Printf("item 9999: estimate=%d (never seen)\n", sketch.Estimate(9999))

	// Heavy hitters above 10% of the stream weight.
	phi := 0.10
	threshold := int64(phi * float64(sketch.StreamWeight()))
	fmt.Printf("\nitems above %.0f%% of N=%d:\n", phi*100, sketch.StreamWeight())
	for _, row := range sketch.FrequentItemsAboveThreshold(threshold, freq.NoFalseNegatives) {
		fmt.Printf("  %v\n", row)
	}

	// The same API over any comparable type: strings route to the generic
	// backend with identical semantics.
	words, err := freq.New[string](32)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []string{"cat", "dog", "cat", "fish", "cat", "dog"} {
		words.UpdateOne(w)
	}
	fmt.Printf("\nword counts: cat=%d dog=%d fish=%d\n",
		words.Estimate("cat"), words.Estimate("dog"), words.Estimate("fish"))

	// Serialization round-trip: the summary travels as a few hundred bytes.
	blob, err := sketch.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	restored, err := freq.New[uint64](64)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.UnmarshalBinary(blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized %d bytes; restored estimate for item 7: %d\n",
		len(blob), restored.Estimate(7))
}
