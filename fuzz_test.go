// Native fuzz targets for the parsers and decoders that accept untrusted
// bytes: the sketch wire format, the generic-items wire format, and the
// stream file readers. Each runs its seed corpus under plain `go test`
// and can be expanded with `go test -fuzz=FuzzName`.
package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/items"
	"repro/internal/streamgen"
)

// FuzzCoreDeserialize: Deserialize must never panic and, when it accepts
// bytes, the result must re-serialize to a decodable sketch with the same
// queryable state.
func FuzzCoreDeserialize(f *testing.F) {
	seed, err := core.NewWithOptions(core.Options{MaxCounters: 64, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		_ = seed.Update(i%80, i%13+1)
	}
	f.Add(seed.Serialize())
	empty, err := core.New(16)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Serialize())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x31, 0x53, 0x49, 0x46}, 20))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := core.Deserialize(data)
		if err != nil {
			return
		}
		// Accepted: must be internally consistent and round-trip stable.
		if s.NumActive() > s.MaxCounters()+1 {
			t.Fatalf("accepted sketch overfull: %d > %d", s.NumActive(), s.MaxCounters())
		}
		again, err := core.Deserialize(s.Serialize())
		if err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		if again.StreamWeight() != s.StreamWeight() || again.MaximumError() != s.MaximumError() ||
			again.NumActive() != s.NumActive() {
			t.Fatal("round trip drifted")
		}
		// The sketch must stay usable.
		if err := s.Update(42, 7); err != nil {
			t.Fatalf("accepted sketch unusable: %v", err)
		}
	})
}

// FuzzItemsDeserialize covers the generic wire format with the string
// SerDe.
func FuzzItemsDeserialize(f *testing.F) {
	s, err := items.New[string](32)
	if err != nil {
		f.Fatal(err)
	}
	_ = s.Update("hello", 10)
	_ = s.Update("", 3)
	f.Add(items.Serialize[string](s, items.StringSerDe{}))
	f.Add([]byte{})
	f.Add([]byte{0x32, 0x54, 0x49, 0x46, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := items.Deserialize[string](data, items.StringSerDe{})
		if err != nil {
			return
		}
		blob := items.Serialize[string](s, items.StringSerDe{})
		again, err := items.Deserialize[string](blob, items.StringSerDe{})
		if err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		if again.StreamWeight() != s.StreamWeight() || again.NumActive() != s.NumActive() {
			t.Fatal("round trip drifted")
		}
	})
}

// FuzzReadText: the text stream parser must never panic and must either
// reject input or produce updates that re-encode losslessly.
func FuzzReadText(f *testing.F) {
	f.Add([]byte("1 2\n3 4\n"))
	f.Add([]byte("# comment\n\n 7\n"))
	f.Add([]byte("-9223372036854775808 9223372036854775807\n"))
	f.Add([]byte("garbage here\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		stream, err := streamgen.ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := streamgen.WriteText(&buf, stream); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := streamgen.ReadText(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(stream) {
			t.Fatalf("round trip length %d != %d", len(again), len(stream))
		}
		for i := range stream {
			if again[i] != stream[i] {
				t.Fatalf("record %d drifted: %v != %v", i, again[i], stream[i])
			}
		}
	})
}

// FuzzReadBinary covers the binary stream format.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = streamgen.WriteBinary(&buf, []streamgen.Update{{Item: 1, Weight: 2}, {Item: -3, Weight: 4}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		stream, err := streamgen.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := streamgen.WriteBinary(&out, stream); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := streamgen.ReadBinary(&out)
		if err != nil || len(again) != len(stream) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
