// Native fuzz targets for the parsers and decoders that accept untrusted
// bytes, driven through the public API: the fast-path sketch wire format,
// the generic-items wire format, and the stream file readers. Each runs
// its seed corpus under plain `go test` and can be expanded with
// `go test -fuzz=FuzzName`.
package repro_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/freq"
	"repro/freq/store"
	"repro/freq/stream"
)

// FuzzSketchUnmarshal: UnmarshalBinary must never panic and, when it
// accepts bytes, the result must re-marshal to a decodable sketch with
// the same queryable state. Every rejection must match freq.ErrCorrupt.
func FuzzSketchUnmarshal(f *testing.F) {
	seed, err := freq.New[int64](64, freq.WithSeed(1))
	if err != nil {
		f.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		_ = seed.Update(i%80, i%13+1)
	}
	blob, err := seed.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	empty, err := freq.New[int64](16)
	if err != nil {
		f.Fatal(err)
	}
	blob, err = empty.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x31, 0x53, 0x49, 0x46}, 20))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := freq.New[int64](16)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.UnmarshalBinary(data); err != nil {
			if !errors.Is(err, freq.ErrCorrupt) {
				t.Fatalf("rejection not ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted: must be internally consistent and round-trip stable.
		if s.NumActive() > s.MaxCounters()+1 {
			t.Fatalf("accepted sketch overfull: %d > %d", s.NumActive(), s.MaxCounters())
		}
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		again, err := freq.New[int64](16)
		if err != nil {
			t.Fatal(err)
		}
		if err := again.UnmarshalBinary(blob); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if again.StreamWeight() != s.StreamWeight() || again.MaximumError() != s.MaximumError() ||
			again.NumActive() != s.NumActive() {
			t.Fatal("round trip drifted")
		}
		// The sketch must stay usable.
		if err := s.Update(42, 7); err != nil {
			t.Fatalf("accepted sketch unusable: %v", err)
		}
	})
}

// FuzzSketchReadFrom covers the bulk deserialize path end to end: the
// streaming decoder (pooled body buffer + direct-insert table load) and
// the receiver-reuse decode of UnmarshalBinary, which must agree with
// each other on every accepted input and reject with ErrCorrupt (or a
// truncation error) otherwise. The reused receiver must survive any
// rejection still usable.
func FuzzSketchReadFrom(f *testing.F) {
	seed, err := freq.New[int64](64, freq.WithSeed(2))
	if err != nil {
		f.Fatal(err)
	}
	for i := int64(0); i < 2000; i++ {
		_ = seed.Update(i%150, i%11+1)
	}
	blob, err := seed.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)-1])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x31, 0x53, 0x49, 0x46}, 20))

	reused, err := freq.New[int64](16)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := freq.New[int64](16)
		if err != nil {
			t.Fatal(err)
		}
		n, streamErr := s.ReadFrom(bytes.NewReader(data))
		if n > int64(len(data)) {
			t.Fatalf("ReadFrom consumed %d of %d bytes", n, len(data))
		}
		inPlaceErr := reused.UnmarshalBinary(data)
		if streamErr != nil {
			// The reused receiver must stay usable whatever happened.
			if err := reused.Update(7, 1); err != nil {
				t.Fatalf("receiver unusable after rejection: %v", err)
			}
			return
		}
		// Accepted by the stream decoder: the exact same bytes must be
		// accepted in place (ReadFrom consumed all of data iff the blob
		// had no trailing bytes; UnmarshalBinary demands exactly one blob).
		if n == int64(len(data)) {
			if inPlaceErr != nil {
				t.Fatalf("stream decode accepted, in-place decode rejected: %v", inPlaceErr)
			}
			if s.StreamWeight() != reused.StreamWeight() || s.NumActive() != reused.NumActive() ||
				s.MaximumError() != reused.MaximumError() {
				t.Fatal("stream and in-place decodes disagree")
			}
		}
		if s.NumActive() > s.MaxCounters()+1 {
			t.Fatalf("accepted sketch overfull: %d > %d", s.NumActive(), s.MaxCounters())
		}
		// Round trip through the alloc-free append path.
		buf, err := s.AppendBinary(nil)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		again, err := freq.New[int64](16)
		if err != nil {
			t.Fatal(err)
		}
		if err := again.UnmarshalBinary(buf); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if again.StreamWeight() != s.StreamWeight() || again.NumActive() != s.NumActive() {
			t.Fatal("round trip drifted")
		}
	})
}

// FuzzStringSketchUnmarshal covers the generic wire format with the
// built-in string codec.
func FuzzStringSketchUnmarshal(f *testing.F) {
	s, err := freq.New[string](32)
	if err != nil {
		f.Fatal(err)
	}
	_ = s.Update("hello", 10)
	_ = s.Update("", 3)
	blob, err := s.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte{0x32, 0x54, 0x49, 0x46, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := freq.New[string](32)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.UnmarshalBinary(data); err != nil {
			if !errors.Is(err, freq.ErrCorrupt) {
				t.Fatalf("rejection not ErrCorrupt: %v", err)
			}
			return
		}
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		again, err := freq.New[string](32)
		if err != nil {
			t.Fatal(err)
		}
		if err := again.UnmarshalBinary(blob); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if again.StreamWeight() != s.StreamWeight() || again.NumActive() != s.NumActive() {
			t.Fatal("round trip drifted")
		}
	})
}

// FuzzReadText: the text stream parser must never panic and must either
// reject input or produce updates that re-encode losslessly.
func FuzzReadText(f *testing.F) {
	f.Add([]byte("1 2\n3 4\n"))
	f.Add([]byte("# comment\n\n 7\n"))
	f.Add([]byte("-9223372036854775808 9223372036854775807\n"))
	f.Add([]byte("garbage here\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		updates, err := stream.ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := stream.WriteText(&buf, updates); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := stream.ReadText(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(updates) {
			t.Fatalf("round trip length %d != %d", len(again), len(updates))
		}
		for i := range updates {
			if again[i] != updates[i] {
				t.Fatalf("record %d drifted: %v != %v", i, again[i], updates[i])
			}
		}
	})
}

// FuzzReadBinary covers the binary stream format.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = stream.WriteBinary(&buf, []stream.Update{{Item: 1, Weight: 2}, {Item: -3, Weight: 4}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		updates, err := stream.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := stream.WriteBinary(&out, updates); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := stream.ReadBinary(&out)
		if err != nil || len(again) != len(updates) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzStorePartitionDecode covers the durable store's untrusted-bytes
// surface: arbitrary bytes posing as a partition file must never panic
// the scanner, and whatever blocks survive the scan must decode (LZ
// tokens included) and merge without panicking. The raw LZ decoder is
// fuzzed on the same input.
func FuzzStorePartitionDecode(f *testing.F) {
	// Seed with a real two-slot partition so the fuzzer starts from a
	// structurally valid file and mutates inward.
	seedDir := f.TempDir()
	st, err := store.Open[int64](seedDir)
	if err != nil {
		f.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	for s := 0; s < 2; s++ {
		sk, err := freq.New[int64](256)
		if err != nil {
			f.Fatal(err)
		}
		for i := int64(0); i < 200; i++ {
			_ = sk.Update(i%40, i%7+1)
		}
		from := base.Add(time.Duration(s) * time.Second)
		if err := st.AppendSlot(freq.NewView(sk), from, from.Add(time.Second)); err != nil {
			f.Fatal(err)
		}
	}
	parts, err := filepath.Glob(filepath.Join(seedDir, "part-*.fps"))
	if err != nil || len(parts) != 1 {
		f.Fatalf("seed partition: %v (err %v)", parts, err)
	}
	seed, err := os.ReadFile(parts[0])
	if err != nil {
		f.Fatal(err)
	}
	seedName := filepath.Base(parts[0])
	if err := st.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte("FPS1"))
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The raw LZ decoder on arbitrary bytes: error or success, never
		// a panic, never unbounded output relative to input.
		if dec, err := store.NewLZ().Decode(nil, data); err == nil && len(data) > 0 {
			// Max expansion is lzMaxMatch bytes per 3-byte token.
			if len(dec) > 131*len(data) {
				t.Fatalf("lz decode expanded %d bytes to %d", len(data), len(dec))
			}
		}

		// The partition scanner + query path on the same bytes posing as
		// a partition file (named so the scan adopts it).
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, seedName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := store.Open[int64](dir)
		if err != nil {
			return // structurally rejected: fine
		}
		v, err := st.Query(base.Add(-time.Hour), base.Add(time.Hour))
		if err == nil {
			_ = v.StreamWeight()
			_ = v.TopK(5)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close after fuzzed open: %v", err)
		}
	})
}
