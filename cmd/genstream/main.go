// Command genstream generates the synthetic workloads of DESIGN.md §4 to
// a file or stdout, in the text or binary stream formats read by cmd/freq
// and cmd/experiments.
//
// Usage:
//
//	genstream -kind trace -n 4000000 -o trace.bin -format binary
//	genstream -kind zipf -alpha 1.05 -n 1000000 -maxweight 10000
//	genstream -kind adversarial -k 1024 -n 100000
//	genstream -kind trace -n 1000000 -push localhost:7077
//
// With -push, the workload is streamed into a running freqd server in
// wire batches instead of written to a file. -wire picks the framing:
// auto (the default) negotiates the binary pairs-frame protocol and
// falls back to text UB blocks against servers that predate it; binary
// requires the upgrade; text skips negotiation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/freq/server"
	"repro/freq/stream"
)

func main() {
	var (
		kind      = flag.String("kind", "trace", "workload: trace, zipf, or adversarial")
		n         = flag.Int("n", 1_000_000, "stream length")
		out       = flag.String("o", "", "output file (default stdout)")
		format    = flag.String("format", "text", "output format: text or binary")
		alpha     = flag.Float64("alpha", 1.05, "zipf skew (zipf kind)")
		universe  = flag.Int("universe", 1<<18, "distinct items (zipf and trace kinds)")
		maxWeight = flag.Int64("maxweight", 10000, "uniform weight upper bound (zipf kind)")
		k         = flag.Int("k", 1024, "counter budget targeted by the adversarial stream")
		seed      = flag.Uint64("seed", 0xCA1DA, "generator seed")
		push      = flag.String("push", "", "stream the workload to a freqd server at this address instead of writing it")
		batch     = flag.Int("batch", 8192, "updates per wire batch when pushing")
		wire      = flag.String("wire", "auto", "push framing: auto (negotiate binary, fall back to text), binary, or text")
	)
	flag.Parse()

	var (
		updates []stream.Update
		err     error
	)
	switch *kind {
	case "trace":
		updates, err = stream.PacketTrace(stream.TraceConfig{
			Packets:         *n,
			DistinctSources: *universe,
			Alpha:           1.1,
			Seed:            *seed,
		})
	case "zipf":
		updates, err = stream.ZipfStream(*alpha, *universe, *n, *maxWeight, *seed)
	case "adversarial":
		updates = stream.Adversarial(*k, int64(*n))
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}

	if *push != "" {
		if err := pushStream(*push, updates, *batch, *wire); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "genstream: pushed %d updates (N=%d) to %s\n",
			len(updates), stream.TotalWeight(updates), *push)
		return
	}

	w, closeOut := openOutput(*out)
	defer closeOut()
	switch *format {
	case "text":
		err = stream.WriteText(w, updates)
	case "binary":
		err = stream.WriteBinary(w, updates)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "genstream: wrote %d updates (N=%d)\n", len(updates), stream.TotalWeight(updates))
}

// pushStream ships the workload to a freqd server in wire batches (one
// round trip per batchSize updates): binary pairs frames when the
// server speaks them, text UB blocks otherwise, per the wire policy.
func pushStream(addr string, updates []stream.Update, batchSize int, wire string) error {
	if batchSize < 1 {
		return fmt.Errorf("batch size %d must be positive", batchSize)
	}
	var opts []server.ClientOption
	if wire == "auto" || wire == "binary" {
		opts = append(opts, server.WithBinary())
	} else if wire != "text" {
		return fmt.Errorf("bad -wire %q (want auto, binary, or text)", wire)
	}
	c, err := server.Dial[int64](addr, opts...)
	if err != nil {
		return err
	}
	defer c.Close()
	if wire == "binary" && !c.Binary() {
		return fmt.Errorf("server at %s declined binary framing (use -wire auto for fallback)", addr)
	}
	items, weights := stream.Columns(updates)
	for lo := 0; lo < len(items); lo += batchSize {
		hi := min(lo+batchSize, len(items))
		if err := c.UpdateBatch(items[lo:hi], weights[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// openOutput returns the stream destination and a close func: stdout
// (with a no-op close) when path is empty, otherwise the created file.
func openOutput(path string) (io.Writer, func()) {
	if path == "" {
		return os.Stdout, func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return f, func() {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genstream:", err)
	os.Exit(1)
}
