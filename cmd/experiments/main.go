// Command experiments regenerates the paper's evaluation artifacts
// (Figures 1-4 of §4, the §2.3.3 space accounting, the §1.3 counter-vs-
// sketch comparison, and the error-guarantee validation) from synthetic
// workloads. See DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded results.
//
// Usage:
//
//	experiments [flags] figure1|figure2|figure3|figure4|space|accuracy|initial|all
//
// Flags scale the workloads; defaults take a few minutes total on a
// laptop. -quick runs a seconds-scale smoke configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/freq/experiments"
)

func main() {
	var (
		packets = flag.Int("packets", 0, "stream length (0 = config default)")
		sources = flag.Int("sources", 0, "approx distinct items (0 = config default)")
		reps    = flag.Int("reps", 0, "timing repetitions (0 = config default)")
		pairs   = flag.Int("pairs", 0, "merge pairs for figure4 (0 = config default)")
		ksFlag  = flag.String("ks", "", "comma-separated counter budgets (default paper ladder)")
		quick   = flag.Bool("quick", false, "seconds-scale smoke configuration")
		seed    = flag.Uint64("seed", 0, "workload seed (0 = default)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] figure1|figure2|figure3|figure4|space|accuracy|initial|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *packets > 0 {
		cfg.Packets = *packets
	}
	if *sources > 0 {
		cfg.DistinctSources = *sources
	}
	if *reps > 0 {
		cfg.Repetitions = *reps
	}
	if *pairs > 0 {
		cfg.MergePairs = *pairs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *ksFlag != "" {
		ks, err := parseKs(*ksFlag)
		if err != nil {
			fatal(err)
		}
		cfg.Ks = ks
	}

	run := flag.Arg(0)
	out := os.Stdout
	runFigure12 := func() {
		eqCtr, eqSpace, err := experiments.Figure1And2(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.PrintRunRows(out, "Figures 1-2, equal counters", eqCtr)
		fmt.Fprintln(out)
		experiments.PrintRunRows(out, "Figures 1-2, equal space (SMED byte budget)", eqSpace)
		fmt.Fprintln(out)
		experiments.PrintSpeedups(out, eqSpace)
	}
	switch run {
	case "figure1", "figure2":
		runFigure12()
	case "figure3":
		rows, err := experiments.Figure3(cfg, nil)
		if err != nil {
			fatal(err)
		}
		experiments.PrintRunRows(out, "Figure 3: decrement quantile sweep", rows)
	case "figure4":
		rows, err := experiments.Figure4(cfg, nil)
		if err != nil {
			fatal(err)
		}
		experiments.PrintMergeRows(out, rows)
	case "space":
		rows, err := experiments.SpaceTable(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.PrintSpaceRows(out, rows)
	case "accuracy":
		rows, err := experiments.AccuracyTable(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.PrintAccuracyRows(out, rows)
	case "initial":
		rows, err := experiments.InitialExperiments(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.PrintInitialRows(out, rows)
	case "all":
		runFigure12()
		fmt.Fprintln(out)
		f3, err := experiments.Figure3(cfg, nil)
		if err != nil {
			fatal(err)
		}
		experiments.PrintRunRows(out, "Figure 3: decrement quantile sweep", f3)
		fmt.Fprintln(out)
		f4, err := experiments.Figure4(cfg, nil)
		if err != nil {
			fatal(err)
		}
		experiments.PrintMergeRows(out, f4)
		fmt.Fprintln(out)
		sp, err := experiments.SpaceTable(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.PrintSpaceRows(out, sp)
		fmt.Fprintln(out)
		acc, err := experiments.AccuracyTable(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.PrintAccuracyRows(out, acc)
		fmt.Fprintln(out)
		init, err := experiments.InitialExperiments(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.PrintInitialRows(out, init)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseKs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ks := make([]int, 0, len(parts))
	for _, p := range parts {
		k, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || k < 8 {
			return nil, fmt.Errorf("invalid k %q", p)
		}
		ks = append(ks, k)
	}
	return ks, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
