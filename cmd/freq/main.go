// Command freq streams "item weight" records from a file (or stdin)
// through a frequent-items summary and reports heavy hitters and point
// queries — the end-user shape of the §1.2 problem statement. With
// -cluster it skips local ingestion and runs the same queries against a
// fleet of freqd servers instead, merging their summaries at the
// coordinator (the §3 mergeability story): one query surface, local or
// distributed.
//
// Usage:
//
//	freq [flags] [stream-file]
//
// The stream file is the text or binary format of cmd/genstream; "-" or
// no argument reads text records from stdin. Examples:
//
//	genstream -kind trace -n 1000000 | freq -k 1024 -phi 0.01
//	freq -k 4096 -algo smin -top 20 trace.bin
//	freq -k 1024 -query 12345,9876 trace.txt
//	freq -cluster host1:7070,host2:7070 -top 20
//
// With -window the stream replays through a sliding window instead of
// one all-time summary: every -rotate-every records close an interval
// and rotate the ring, -rolling prints the rolling top-N at each
// boundary, and the final report covers only the records still inside
// the window (-win narrows it further). Against a fleet, -win scopes
// the cluster queries to each node's last w live intervals:
//
//	freq -k 1024 -window 60 -rotate-every 10000 -rolling 5 trace.bin
//	freq -cluster host1:7070,host2:7070 -win 5 -top 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/freq"
	"repro/freq/server"
	"repro/freq/stream"
)

func main() {
	var (
		k        = flag.Int("k", 1024, "maximum number of tracked counters")
		algo     = flag.String("algo", "smed", "decrement policy: smed, smin, or a quantile like 0.7")
		phi      = flag.Float64("phi", 0, "report items with frequency > phi*N (0 = use the sketch's own error band)")
		top      = flag.Int("top", 0, "report only the top-N rows (0 = all qualifying)")
		noFP     = flag.Bool("nofp", false, "no-false-positives extraction (default: no false negatives)")
		queries  = flag.String("query", "", "comma-separated item ids to point-query instead of listing heavy hitters")
		dumpFile = flag.String("serialize", "", "also write the serialized sketch to this file")
		cluster  = flag.String("cluster", "", "comma-separated freqd addresses: query the fleet's merged summary instead of ingesting locally (-k/-algo/-serialize and the stream file do not apply)")
		window   = flag.Int("window", 0, "replay the stream through a sliding window of this many intervals (0 = one all-time summary)")
		rotEvery = flag.Int("rotate-every", 100000, "records per window interval (with -window)")
		rolling  = flag.Int("rolling", 0, "print the rolling top-N at every rotation (with -window)")
		win      = flag.Int("win", 0, "scope the final report to the last w intervals (local -window ring or -cluster nodes' windows; 0 = full window / all-time)")
	)
	flag.Parse()

	if *win > 0 && *window == 0 && *cluster == "" {
		fatal(fmt.Errorf("-win scopes a window: combine it with -window (local) or -cluster (fleet)"))
	}

	// src is the one read surface the reporting below runs against —
	// identical for a locally-ingested sketch, a windowed replay, and a
	// remote fleet.
	var src freq.Queryable[int64]
	if *cluster != "" {
		// Cluster mode queries remote summaries: local-ingest flags would
		// be silently dead, so reject them loudly.
		if flag.Arg(0) != "" {
			fatal(fmt.Errorf("-cluster queries remote servers; stream file %q would be ignored", flag.Arg(0)))
		}
		if *dumpFile != "" {
			fatal(fmt.Errorf("-serialize is incompatible with -cluster (the summary lives on the servers; use their SNAP command)"))
		}
		cl, err := server.DialCluster[int64](strings.Split(*cluster, ","),
			server.WithNodeTimeout(5*time.Second))
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		if *win > 0 {
			// Window-scoped fan-out: merge every node's last w intervals.
			if err := cl.RefreshWindow(*win); err != nil {
				fatal(err)
			}
			fmt.Printf("cluster of %d nodes (last %d intervals): N=%d, err=%d\n",
				cl.Nodes(), *win, cl.StreamWeight(), cl.MaximumError())
		} else {
			if err := cl.Refresh(); err != nil {
				fatal(err)
			}
			fmt.Printf("cluster of %d nodes: N=%d, err=%d\n",
				cl.Nodes(), cl.StreamWeight(), cl.MaximumError())
		}
		if m := cl.Manifest(); m.Degraded() {
			// The merged numbers below cover only the answering subset:
			// say so, and name the nodes that are missing from them.
			fmt.Fprintf(os.Stderr, "warning: %d/%d nodes answered; missing: %s\n",
				m.Healthy(), cl.Nodes(), strings.Join(m.Dead(), ", "))
		}
		src = cl
	} else if *window > 0 {
		src = ingestWindowed(*k, *algo, *window, *rotEvery, *rolling, *win, *dumpFile, flag.Arg(0))
	} else {
		sketch, err := newSketch(*k, *algo)
		if err != nil {
			fatal(err)
		}
		updates, err := readStream(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		// Ingest through the batch path: one growth/decrement check per
		// chunk instead of per update.
		items, weights := stream.Columns(updates)
		if err := sketch.UpdateWeightedBatch(items, weights); err != nil {
			fatal(fmt.Errorf("ingest %d updates: %w", len(updates), err))
		}
		fmt.Println(sketch)
		if *dumpFile != "" {
			defer dump(sketch, *dumpFile)
		}
		src = sketch
	}

	if *queries != "" {
		for _, q := range strings.Split(*queries, ",") {
			item, err := strconv.ParseInt(strings.TrimSpace(q), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad query item %q", q))
			}
			fmt.Printf("item %d: estimate=%d bounds=[%d, %d]\n",
				item, src.Estimate(item), src.LowerBound(item), src.UpperBound(item))
		}
	} else {
		et := freq.NoFalseNegatives
		if *noFP {
			et = freq.NoFalsePositives
		}
		threshold := src.MaximumError()
		if *phi > 0 {
			threshold = int64(*phi * float64(src.StreamWeight()))
		}
		q := freq.From[int64](src).Where(threshold).WithErrorType(et)
		if *top > 0 {
			q = q.Limit(*top)
		}
		rows := q.Collect()
		fmt.Printf("%d heavy hitters above threshold %d (%s):\n", len(rows), threshold, et)
		for i, r := range rows {
			fmt.Printf("%4d. item=%-12d est=%-12d lb=%-12d ub=%d\n",
				i+1, r.Item, r.Estimate, r.LowerBound, r.UpperBound)
		}
	}
}

// algoOptions maps -algo onto construction options shared by the
// all-time and windowed ingest paths.
func algoOptions(algo string) ([]freq.Option, error) {
	switch algo {
	case "smed":
		return nil, nil
	case "smin":
		return []freq.Option{freq.WithSMIN()}, nil
	default:
		q, err := strconv.ParseFloat(algo, 64)
		if err != nil {
			return nil, fmt.Errorf("unknown algo %q (want smed, smin, or a quantile)", algo)
		}
		if q == 0 {
			return []freq.Option{freq.WithSMIN()}, nil
		}
		return []freq.Option{freq.WithQuantile(q)}, nil
	}
}

func newSketch(k int, algo string) (*freq.Sketch[int64], error) {
	opts, err := algoOptions(algo)
	if err != nil {
		return nil, err
	}
	return freq.New[int64](k, opts...)
}

// ingestWindowed replays the stream through a sliding window: every
// rotEvery records close one interval and rotate the ring, so the
// stream's tail ages the head out of scope exactly as wall-clock
// rotation would in a live collector. Returns the read surface for the
// final report: the full window, or its last win intervals.
func ingestWindowed(k int, algo string, window, rotEvery, rolling, win int, dumpFile, path string) freq.Queryable[int64] {
	if rotEvery < 1 {
		fatal(fmt.Errorf("-rotate-every must be >= 1, got %d", rotEvery))
	}
	opts, err := algoOptions(algo)
	if err != nil {
		fatal(err)
	}
	wd, err := freq.NewWindowed[int64](k, window, opts...)
	if err != nil {
		fatal(err)
	}
	updates, err := readStream(path)
	if err != nil {
		fatal(err)
	}
	items, weights := stream.Columns(updates)
	interval := 0
	for lo := 0; lo < len(items); lo += rotEvery {
		hi := min(lo+rotEvery, len(items))
		if err := wd.UpdateWeightedBatch(items[lo:hi], weights[lo:hi]); err != nil {
			fatal(fmt.Errorf("ingest records %d..%d: %w", lo, hi, err))
		}
		interval++
		if rolling > 0 {
			fmt.Printf("interval %d (records %d..%d), rolling top %d:\n", interval, lo, hi, rolling)
			for i, r := range wd.TopK(rolling) {
				fmt.Printf("  %2d. item=%-12d est=%d\n", i+1, r.Item, r.Estimate)
			}
		}
		if hi < len(items) {
			wd.Rotate()
		}
	}
	fmt.Println(wd)
	if dumpFile != "" {
		// The whole ring ships, intervals intact; decode with
		// freq.Windowed.UnmarshalBinary.
		defer dump(wd, dumpFile)
	}
	if win > 0 {
		return wd.Last(win)
	}
	return wd
}

// dump serializes a summary (single sketch or whole windowed ring) to
// path.
func dump(src io.WriterTo, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	n, err := src.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("serialized %d bytes to %s\n", n, path)
}

// readStream loads a text or binary stream file; "-" or "" reads text
// from stdin.
func readStream(path string) ([]stream.Update, error) {
	if path == "" || path == "-" {
		return stream.ReadText(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Try binary first; fall back to text.
	if updates, err := stream.ReadBinary(f); err == nil {
		return updates, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return stream.ReadText(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freq:", err)
	os.Exit(1)
}
