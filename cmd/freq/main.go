// Command freq streams "item weight" records from a file (or stdin)
// through a frequent-items summary and reports heavy hitters and point
// queries — the end-user shape of the §1.2 problem statement. With
// -cluster it skips local ingestion and runs the same queries against a
// fleet of freqd servers instead, merging their summaries at the
// coordinator (the §3 mergeability story): one query surface, local or
// distributed.
//
// Usage:
//
//	freq [flags] [stream-file]
//
// The stream file is the text or binary format of cmd/genstream; "-" or
// no argument reads text records from stdin. Examples:
//
//	genstream -kind trace -n 1000000 | freq -k 1024 -phi 0.01
//	freq -k 4096 -algo smin -top 20 trace.bin
//	freq -k 1024 -query 12345,9876 trace.txt
//	freq -cluster host1:7070,host2:7070 -top 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/freq"
	"repro/freq/server"
	"repro/freq/stream"
)

func main() {
	var (
		k        = flag.Int("k", 1024, "maximum number of tracked counters")
		algo     = flag.String("algo", "smed", "decrement policy: smed, smin, or a quantile like 0.7")
		phi      = flag.Float64("phi", 0, "report items with frequency > phi*N (0 = use the sketch's own error band)")
		top      = flag.Int("top", 0, "report only the top-N rows (0 = all qualifying)")
		noFP     = flag.Bool("nofp", false, "no-false-positives extraction (default: no false negatives)")
		queries  = flag.String("query", "", "comma-separated item ids to point-query instead of listing heavy hitters")
		dumpFile = flag.String("serialize", "", "also write the serialized sketch to this file")
		cluster  = flag.String("cluster", "", "comma-separated freqd addresses: query the fleet's merged summary instead of ingesting locally (-k/-algo/-serialize and the stream file do not apply)")
	)
	flag.Parse()

	// src is the one read surface the reporting below runs against —
	// identical for a locally-ingested sketch and a remote fleet.
	var src freq.Queryable[int64]
	if *cluster != "" {
		// Cluster mode queries remote summaries: local-ingest flags would
		// be silently dead, so reject them loudly.
		if flag.Arg(0) != "" {
			fatal(fmt.Errorf("-cluster queries remote servers; stream file %q would be ignored", flag.Arg(0)))
		}
		if *dumpFile != "" {
			fatal(fmt.Errorf("-serialize is incompatible with -cluster (the summary lives on the servers; use their SNAP command)"))
		}
		cl, err := server.DialCluster[int64](strings.Split(*cluster, ",")...)
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		if err := cl.Refresh(); err != nil {
			fatal(err)
		}
		fmt.Printf("cluster of %d nodes: N=%d, err=%d\n",
			cl.Nodes(), cl.StreamWeight(), cl.MaximumError())
		src = cl
	} else {
		sketch, err := newSketch(*k, *algo)
		if err != nil {
			fatal(err)
		}
		updates, err := readStream(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		// Ingest through the batch path: one growth/decrement check per
		// chunk instead of per update.
		items, weights := stream.Columns(updates)
		if err := sketch.UpdateWeightedBatch(items, weights); err != nil {
			fatal(fmt.Errorf("ingest %d updates: %w", len(updates), err))
		}
		fmt.Println(sketch)
		if *dumpFile != "" {
			defer dump(sketch, *dumpFile)
		}
		src = sketch
	}

	if *queries != "" {
		for _, q := range strings.Split(*queries, ",") {
			item, err := strconv.ParseInt(strings.TrimSpace(q), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad query item %q", q))
			}
			fmt.Printf("item %d: estimate=%d bounds=[%d, %d]\n",
				item, src.Estimate(item), src.LowerBound(item), src.UpperBound(item))
		}
	} else {
		et := freq.NoFalseNegatives
		if *noFP {
			et = freq.NoFalsePositives
		}
		threshold := src.MaximumError()
		if *phi > 0 {
			threshold = int64(*phi * float64(src.StreamWeight()))
		}
		q := freq.From[int64](src).Where(threshold).WithErrorType(et)
		if *top > 0 {
			q = q.Limit(*top)
		}
		rows := q.Collect()
		fmt.Printf("%d heavy hitters above threshold %d (%s):\n", len(rows), threshold, et)
		for i, r := range rows {
			fmt.Printf("%4d. item=%-12d est=%-12d lb=%-12d ub=%d\n",
				i+1, r.Item, r.Estimate, r.LowerBound, r.UpperBound)
		}
	}
}

func newSketch(k int, algo string) (*freq.Sketch[int64], error) {
	switch algo {
	case "smed":
		return freq.New[int64](k)
	case "smin":
		return freq.New[int64](k, freq.WithSMIN())
	default:
		q, err := strconv.ParseFloat(algo, 64)
		if err != nil {
			return nil, fmt.Errorf("unknown algo %q (want smed, smin, or a quantile)", algo)
		}
		if q == 0 {
			return freq.New[int64](k, freq.WithSMIN())
		}
		return freq.New[int64](k, freq.WithQuantile(q))
	}
}

// dump serializes the sketch to path.
func dump(sketch *freq.Sketch[int64], path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	n, err := sketch.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("serialized %d bytes to %s\n", n, path)
}

// readStream loads a text or binary stream file; "-" or "" reads text
// from stdin.
func readStream(path string) ([]stream.Update, error) {
	if path == "" || path == "-" {
		return stream.ReadText(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Try binary first; fall back to text.
	if updates, err := stream.ReadBinary(f); err == nil {
		return updates, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return stream.ReadText(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freq:", err)
	os.Exit(1)
}
