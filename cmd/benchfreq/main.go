// Command benchfreq runs the repository's canonical performance kernels
// — Update, UpdateBatch, Merge, Serialize/Deserialize, View, QueryTopK,
// WindowedRotate, WindowedTopK, StoreAppend, StoreQueryRange,
// TenantChurn, EstimateBatch, and the daemon-side network ingest pair
// ServerIngestText64/ServerIngestBinary64 — and emits the results
// as BENCH_core.json (the
// machine-readable perf trajectory committed at the repo root) plus a
// benchstat-compatible text file for regression comparisons in CI.
//
// For the kernels the bulk engine rewrote, the replay-based baselines
// (core.MergeReplay, core.DeserializeReplay) run alongside, so one
// invocation captures baseline and post-change numbers and the
// merge/deserialize speedup ratios the PR acceptance tracks. The ingest
// pair likewise runs text and binary framing against the same live
// server, producing the server_ingest_binary speedup ratio.
//
//	go run ./cmd/benchfreq -benchtime 1s -out BENCH_core.json -txt BENCH_core.txt
//
// With -loadgen it instead runs as a standalone load generator: a fleet
// of concurrent client connections streaming batches at a freqd-style
// server (an in-process one when -addr is empty), reporting daemon-side
// items/sec:
//
//	go run ./cmd/benchfreq -loadgen -conns 256 -duration 5s -wire binary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/freq"
	"repro/freq/server"
	"repro/freq/store"
	"repro/freq/tenant"
	"repro/internal/core"
	"repro/internal/sharded"
)

// kernel is one named benchmark.
type kernel struct {
	name string
	fn   func(b *testing.B)
}

// result is one kernel's measurement in the JSON trajectory.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	GoVersion          string             `json:"go_version"`
	GOOS               string             `json:"goos"`
	GOARCH             string             `json:"goarch"`
	Benchtime          string             `json:"benchtime"`
	GeneratedAt        string             `json:"generated_at"`
	Results            []result           `json:"results"`
	Speedups           map[string]float64 `json:"speedups_vs_replay"`
	SerializeAllocsPer int64              `json:"serialize_allocs_per_op"`
}

const (
	updateK    = 4096
	mergeSrcK  = 1 << 16
	mergeDstK  = 1 << 17
	serialK    = 1 << 14
	streamLen  = 1 << 19
	batchChunk = 4096
)

// synthItem is a cheap deterministic item generator (splitmix-style
// scramble of the index over a skewless domain; kernel costs here do not
// depend on the weight distribution).
func synthItem(i int64, domain int64) int64 {
	x := uint64(i) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return int64(x % uint64(domain))
}

func mustSketch(opts core.Options) *core.Sketch {
	s, err := core.NewWithOptions(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// builtSketch returns a sketch of budget k filled with n synthetic
// updates over the given domain.
func builtSketch(k int, n int64, domain int64, seed uint64) *core.Sketch {
	s := mustSketch(core.Options{MaxCounters: k, Seed: seed, DisableGrowth: true})
	for i := int64(0); i < n; i++ {
		if err := s.Update(synthItem(i, domain), i%100+1); err != nil {
			panic(err)
		}
	}
	return s
}

// mergeSrc fills ~90% of a mergeSrcK budget with distinct keys — the
// coordinator fan-in shape of the sharded View and the cluster Refresh.
func mergeSrc() *core.Sketch {
	s := mustSketch(core.Options{MaxCounters: mergeSrcK, Seed: 0xBE, DisableGrowth: true})
	for i := int64(0); i < mergeSrcK*9/10; i++ {
		if err := s.Update(i, i%100+1); err != nil {
			panic(err)
		}
	}
	return s
}

func kernels() []kernel {
	return []kernel{
		{"Update", func(b *testing.B) {
			s := mustSketch(core.Options{MaxCounters: updateK, Seed: 1, DisableGrowth: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Update(synthItem(int64(i)&(streamLen-1), 1<<16), 1)
			}
		}},
		{"UpdateBatch", func(b *testing.B) {
			s := mustSketch(core.Options{MaxCounters: updateK, Seed: 2, DisableGrowth: true})
			items := make([]int64, batchChunk)
			for i := range items {
				items[i] = synthItem(int64(i), 1<<16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += len(items) {
				s.UpdateBatch(items)
			}
		}},
		{"Merge", func(b *testing.B) {
			src := mergeSrc()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dst := mustSketch(core.Options{MaxCounters: mergeDstK, Seed: 3, DisableGrowth: true})
				b.StartTimer()
				dst.Merge(src)
			}
		}},
		{"MergeReplay", func(b *testing.B) {
			src := mergeSrc()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dst := mustSketch(core.Options{MaxCounters: mergeDstK, Seed: 4, DisableGrowth: true})
				b.StartTimer()
				core.MergeReplay(dst, src)
			}
		}},
		{"Serialize", func(b *testing.B) {
			s := builtSketch(serialK, streamLen, 1<<18, 5)
			buf := make([]byte, 0, s.SerializedSizeBytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = s.AppendTo(buf[:0])
			}
		}},
		{"Deserialize", func(b *testing.B) {
			blob := builtSketch(serialK, streamLen, 1<<18, 6).Serialize()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Deserialize(blob); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DeserializeReplay", func(b *testing.B) {
			blob := builtSketch(serialK, streamLen, 1<<18, 7).Serialize()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.DeserializeReplay(blob); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DeserializeInto", func(b *testing.B) {
			blob := builtSketch(serialK, streamLen, 1<<18, 8).Serialize()
			dst := new(core.Sketch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.DeserializeInto(dst, blob); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"View", func(b *testing.B) {
			sk, err := sharded.New(16384, 8)
			if err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < 500_000; i++ {
				_ = sk.Update(synthItem(i, 1<<14), i%23+1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_ = sk.Update(int64(i), 1) // invalidate: every iteration pays a rebuild
				b.StartTimer()
				if _, err := sk.View(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"QueryTopK", func(b *testing.B) {
			s, err := freq.New[int64](16384, freq.WithSeed(9))
			if err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < 500_000; i++ {
				_ = s.Update(synthItem(i, 1<<14), i%23+1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rows := s.TopK(64); len(rows) == 0 {
					b.Fatal("no rows")
				}
			}
		}},
		{"WindowedRotate", func(b *testing.B) {
			// Steady-state rotation of a warm 60-interval ring: the
			// retired slot's table is recycled in place, so an op is one
			// O(table) state clear and zero allocations.
			wd, err := freq.NewWindowed[int64](updateK, 60, freq.WithSeed(11))
			if err != nil {
				b.Fatal(err)
			}
			items := make([]int64, batchChunk)
			for i := range items {
				items[i] = synthItem(int64(i), 1<<12)
			}
			for r := 0; r < 61; r++ { // wrap the ring so every slot is warm
				wd.UpdateBatch(items)
				wd.Rotate()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wd.Rotate()
			}
		}},
		{"WindowedTopK", func(b *testing.B) {
			// Worst-case windowed read: every op invalidates the epoch
			// cache, so it pays the full 60-way bulk re-merge plus the
			// top-k extraction (cached reads are ~QueryTopK).
			wd, err := freq.NewWindowed[int64](updateK, 60, freq.WithSeed(12))
			if err != nil {
				b.Fatal(err)
			}
			for r := 0; r < 60; r++ {
				for j := 0; j < 2048; j++ {
					if err := wd.Update(synthItem(int64(r*2048+j), 1<<14), int64(j%100+1)); err != nil {
						b.Fatal(err)
					}
				}
				if r < 59 {
					wd.Rotate()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				wd.UpdateOne(synthItem(int64(i), 1<<14))
				b.StartTimer()
				if rows := wd.TopK(64); len(rows) == 0 {
					b.Fatal("no rows")
				}
			}
		}},
		{"StoreAppend", func(b *testing.B) {
			// Steady-state durable-store append: one retired slot encoded
			// (alloc-free AppendBinary), LZ-compressed into the store's
			// reused buffer, and written into the open partition. The
			// partition roll and manifest commit happen once, before the
			// timer; the per-op path allocates nothing.
			dir, err := os.MkdirTemp("", "benchfreq-store")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			st, err := store.Open[int64](dir, store.WithPartitionDuration(24*time.Hour))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			sk, err := freq.New[int64](512, freq.WithSeed(13))
			if err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < 2000; i++ {
				_ = sk.Update(synthItem(i, 256), i%100+1)
			}
			v := freq.NewView(sk)
			base := time.Unix(1_700_000_000, 0)
			if err := st.AppendSlot(v, base, base.Add(time.Millisecond)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := base.Add(time.Duration(i+1) * time.Millisecond)
				if err := st.AppendSlot(v, start, start.Add(time.Millisecond)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"StoreQueryRange", func(b *testing.B) {
			// Steady-state historical range query: 240 persisted slots
			// across 4 partitions decode through pooled scratch sketches
			// (DeserializeInto table recycling) on the worker pool and fold
			// into a reused accumulator (QueryInto + Clear). After the
			// first query warms the pools, an op allocates nothing.
			dir, err := os.MkdirTemp("", "benchfreq-store")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			st, err := store.Open[int64](dir, store.WithPartitionDuration(time.Minute))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			sk, err := freq.New[int64](512, freq.WithSeed(14))
			if err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < 2000; i++ {
				_ = sk.Update(synthItem(i, 256), i%100+1)
			}
			v := freq.NewView(sk)
			base := time.Unix(1_700_000_000, 0)
			const slots = 240
			for s := 0; s < slots; s++ {
				start := base.Add(time.Duration(s) * time.Second)
				if err := st.AppendSlot(v, start, start.Add(time.Second)); err != nil {
					b.Fatal(err)
				}
			}
			from, to := base, base.Add(slots*time.Second)
			acc, err := st.QueryInto(nil, from, to) // warm pools and accumulator
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc, err = st.QueryInto(acc, from, to)
				if err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ServerIngestText64", func(b *testing.B) {
			benchServerIngest(b, 64, false)
		}},
		{"ServerIngestBinary64", func(b *testing.B) {
			benchServerIngest(b, 64, true)
		}},
		{"TenantChurn", func(b *testing.B) {
			// Steady-state tenant lifecycle: acquire (recreating from the
			// warm pool), ingest, release, evict. After one priming cycle
			// seeds the pool, the loop must allocate nothing — eviction
			// recycles the tenant's sketch tables in place and the
			// map-tombstone reuse keeps the registry itself quiet. The
			// kernel hard-fails if the warm path allocates, so a pooling
			// regression breaks the bench run, not just the numbers.
			mgr, err := tenant.New[int64](tenant.Config{MaxCounters: 512, Shards: 2, MaxTenants: 64})
			if err != nil {
				b.Fatal(err)
			}
			churn := func() {
				ten, err := mgr.Acquire("bench-tenant")
				if err != nil {
					b.Fatal(err)
				}
				if err := ten.Update(7, 100); err != nil {
					b.Fatal(err)
				}
				ten.Release()
				if err := mgr.Evict("bench-tenant"); err != nil {
					b.Fatal(err)
				}
			}
			churn() // prime the warm pool
			if allocs := testing.AllocsPerRun(100, churn); allocs != 0 {
				b.Fatalf("warm tenant churn allocates %.1f allocs/op, want 0", allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				churn()
			}
		}},
		{"EstimateBatch", func(b *testing.B) {
			s := builtSketch(1<<17, streamLen, 1<<17, 10)
			items := make([]int64, 1<<14)
			for i := range items {
				items[i] = synthItem(int64(i)*3, 1<<18)
			}
			dst := make([]int64, len(items))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = s.EstimateBatch(items, dst)
			}
		}},
	}
}

// benchServerIngest measures daemon-side ingest through the wire
// protocol: conns concurrent clients stream batchChunk-item batches at
// a live in-process TCP server until b.N items have landed, over text
// UB blocks or binary pairs frames. ns/op is ns per ingested item,
// end to end (client encode + kernel + server decode + apply).
func benchServerIngest(b *testing.B, conns int, bin bool) {
	srv, err := server.New(server.Config{MaxCounters: updateK, Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	items := make([]int64, batchChunk)
	weights := make([]int64, batchChunk)
	for i := range items {
		items[i] = synthItem(int64(i), 1<<16)
		weights[i] = int64(i%100 + 1)
	}
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	errCh := make(chan error, conns)
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var opts []server.ClientOption
			if bin {
				opts = append(opts, server.WithBinary())
			}
			c, err := server.Dial[int64](ln.Addr().String(), opts...)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			if bin != c.Binary() {
				errCh <- fmt.Errorf("negotiated framing binary=%v, want %v", c.Binary(), bin)
				return
			}
			for {
				left := remaining.Add(-batchChunk) + batchChunk
				if left <= 0 {
					return
				}
				chunk := min(int64(batchChunk), left)
				if err := c.UpdateBatch(items[:chunk], weights[:chunk]); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
}

// runLoadgen drives a fleet of concurrent client connections at a
// server for a fixed duration and reports daemon-side items/sec. With
// an empty addr it boots an in-process server, so the rate comes from
// the server's own update counter; against a remote daemon it reports
// the client-side count (a lower bound on what the daemon saw).
func runLoadgen(addr string, conns int, dur time.Duration, batch int, wire string) error {
	var srv *server.Server
	if addr == "" {
		var err error
		srv, err = server.New(server.Config{MaxCounters: updateK, Shards: 8})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer srv.Close()
		addr = ln.Addr().String()
	}

	var opts []server.ClientOption
	switch wire {
	case "binary", "auto":
		opts = append(opts, server.WithBinary())
	case "text":
	default:
		return fmt.Errorf("bad -wire %q (want binary, text, or auto)", wire)
	}

	items := make([]int64, batch)
	weights := make([]int64, batch)
	for i := range items {
		items[i] = synthItem(int64(i), 1<<16)
		weights[i] = 1
	}
	var sent atomic.Int64
	var binConns atomic.Int64
	errCh := make(chan error, conns)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := server.Dial[int64](addr, opts...)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			if wire == "binary" && !c.Binary() {
				errCh <- fmt.Errorf("server declined binary framing")
				return
			}
			if c.Binary() {
				binConns.Add(1)
			}
			for time.Now().Before(deadline) {
				if err := c.UpdateBatch(items, weights); err != nil {
					errCh <- err
					return
				}
				sent.Add(int64(batch))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return err
	default:
	}

	n := sent.Load()
	side := "client"
	if srv != nil {
		// Daemon-side truth: what the server actually applied.
		n, _ = srv.Counters()
		side = "daemon"
	}
	fmt.Printf("loadgen: conns=%d (binary=%d) wire=%s batch=%d duration=%s %s-side items=%d rate=%.0f items/sec\n",
		conns, binConns.Load(), wire, batch, elapsed.Round(time.Millisecond), side, n, float64(n)/elapsed.Seconds())
	return nil
}

func main() {
	// testing.Init registers the test.* flags; without it the benchtime
	// override below would silently no-op and every kernel would run at
	// the 1s default.
	testing.Init()
	benchtime := flag.Duration("benchtime", time.Second, "minimum run time per kernel")
	out := flag.String("out", "BENCH_core.json", "JSON output path ('' to skip)")
	txt := flag.String("txt", "BENCH_core.txt", "benchstat-compatible output path ('' to skip)")
	loadgen := flag.Bool("loadgen", false, "run as a load generator instead of the kernel suite")
	addr := flag.String("addr", "", "loadgen: server address (empty boots an in-process server)")
	conns := flag.Int("conns", 256, "loadgen: concurrent client connections")
	duration := flag.Duration("duration", 5*time.Second, "loadgen: run length")
	batch := flag.Int("batch", batchChunk, "loadgen: items per batch")
	wire := flag.String("wire", "binary", "loadgen: framing (binary, text, or auto)")
	flag.Parse()

	if *loadgen {
		if err := runLoadgen(*addr, *conns, *duration, *batch, *wire); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if f := flag.Lookup("test.benchtime"); f != nil {
		if err := f.Value.Set(benchtime.String()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	rep := report{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchtime:   benchtime.String(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Speedups:    map[string]float64{},
	}
	nsPerOp := map[string]float64{}

	var text []byte
	text = append(text, fmt.Sprintf("goos: %s\ngoarch: %s\npkg: repro/cmd/benchfreq\n", runtime.GOOS, runtime.GOARCH)...)
	for _, k := range kernels() {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			k.fn(b)
		})
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		nsPerOp[k.name] = ns
		rep.Results = append(rep.Results, result{
			Name:        k.name,
			Iterations:  res.N,
			NsPerOp:     ns,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		line := fmt.Sprintf("Benchmark%s \t%s\t%s\n", k.name, res.String(), res.MemString())
		text = append(text, line...)
		fmt.Fprintf(os.Stderr, "%s", line)
		if k.name == "Serialize" {
			rep.SerializeAllocsPer = res.AllocsPerOp()
		}
	}
	if base, ok := nsPerOp["MergeReplay"]; ok && nsPerOp["Merge"] > 0 {
		rep.Speedups["merge"] = base / nsPerOp["Merge"]
	}
	if base, ok := nsPerOp["DeserializeReplay"]; ok {
		if nsPerOp["Deserialize"] > 0 {
			rep.Speedups["deserialize"] = base / nsPerOp["Deserialize"]
		}
		if nsPerOp["DeserializeInto"] > 0 {
			rep.Speedups["deserialize_into"] = base / nsPerOp["DeserializeInto"]
		}
	}
	// Daemon ingest throughput ratio: binary pairs frames vs text UB
	// blocks at the same connection fan-out (items/sec ratio is the
	// inverse of the ns/item ratio).
	if base, ok := nsPerOp["ServerIngestText64"]; ok && nsPerOp["ServerIngestBinary64"] > 0 {
		rep.Speedups["server_ingest_binary"] = base / nsPerOp["ServerIngestBinary64"]
	}
	fmt.Fprintf(os.Stderr, "speedups vs replay: %+v\n", rep.Speedups)

	if *txt != "" {
		if err := os.WriteFile(*txt, text, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
