// Command freqvet runs the repo's custom static-analysis suite — the
// machine-checked form of the invariants every hot path depends on —
// alongside an in-house curated set of stock-vet-style analyzers.
//
//	go run ./cmd/freqvet ./...
//
// exits 0 only when the tree is clean; any finding (or an unexplained
// //freqvet:ignore) is an error, which is how CI gates on it. See
// docs/ARCHITECTURE.md ("Static invariants") for each analyzer's
// contract and annotation syntax.
package main

import (
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/passes/copylocks"
	"repro/internal/analysis/passes/epochlock"
	"repro/internal/analysis/passes/loopclosure"
	"repro/internal/analysis/passes/nilness"
	"repro/internal/analysis/passes/noalloc"
	"repro/internal/analysis/passes/shadow"
	"repro/internal/analysis/passes/unsafeallow"
	"repro/internal/analysis/passes/wirereply"
)

// suite is freqvet's analyzer set: the four invariant checkers first,
// then the stock-style general passes.
var suite = []*analysis.Analyzer{
	noalloc.Analyzer,
	epochlock.Analyzer,
	unsafeallow.Analyzer,
	wirereply.Analyzer,
	copylocks.Analyzer,
	loopclosure.Analyzer,
	shadow.Analyzer,
	nilness.Analyzer,
}

func main() {
	os.Exit(driver.Main(os.Stdout, os.Args[1:], suite))
}
