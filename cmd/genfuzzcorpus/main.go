// Command genfuzzcorpus regenerates the committed seed corpora for the
// CI fuzz smokes. Each corpus entry is written in the `go test fuzz v1`
// encoding so plain `go test` replays it as part of the seed corpus and
// `go test -fuzz` mutates outward from structurally valid inputs
// instead of groping for the magic bytes from scratch.
//
// The inputs are deterministic (fixed sketch seeds, fixed timestamps),
// so rerunning the generator after a wire-format change refreshes the
// corpora in one command:
//
//	go run ./cmd/genfuzzcorpus -root .
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/freq"
	"repro/freq/store"
)

func main() {
	root := flag.String("root", ".", "repository root to write testdata under")
	flag.Parse()

	if err := run(*root); err != nil {
		fmt.Fprintln(os.Stderr, "genfuzzcorpus:", err)
		os.Exit(1)
	}
}

func run(root string) error {
	sketch, err := sketchCorpus()
	if err != nil {
		return err
	}
	if err := writeCorpus(filepath.Join(root, "testdata", "fuzz", "FuzzSketchReadFrom"), sketch); err != nil {
		return err
	}
	partition, err := partitionCorpus()
	if err != nil {
		return err
	}
	if err := writeCorpus(filepath.Join(root, "testdata", "fuzz", "FuzzStorePartitionDecode"), partition); err != nil {
		return err
	}
	if err := writeCorpus(filepath.Join(root, "freq", "server", "testdata", "fuzz", "FuzzBinaryFrameDecode"), frameCorpus()); err != nil {
		return err
	}
	return writeCorpus(filepath.Join(root, "freq", "server", "testdata", "fuzz", "FuzzTenantCommand"), tenantCorpus())
}

// sketchCorpus seeds the bulk-decode fuzzer: a valid marshaled sketch,
// a truncated one, and magic bytes with a hostile body.
func sketchCorpus() (map[string][]byte, error) {
	s, err := freq.New[int64](64, freq.WithSeed(2))
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < 2000; i++ {
		if err := s.Update(i%150, i%11+1); err != nil {
			return nil, err
		}
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		return nil, err
	}
	small, err := freq.New[int64](8, freq.WithSeed(3))
	if err != nil {
		return nil, err
	}
	if err := small.Update(42, 7); err != nil {
		return nil, err
	}
	smallBlob, err := small.MarshalBinary()
	if err != nil {
		return nil, err
	}
	zeroed := append([]byte(nil), blob...)
	for i := len(zeroed) / 2; i < len(zeroed); i++ {
		zeroed[i] = 0
	}
	return map[string][]byte{
		"seed-valid":       blob,
		"seed-small":       smallBlob,
		"seed-truncated":   blob[:len(blob)-1],
		"seed-header-only": blob[:16],
		"seed-zeroed-body": zeroed,
	}, nil
}

// partitionCorpus seeds the durable-store fuzzer with the bytes of a
// real two-slot partition file plus damaged variants.
func partitionCorpus() (map[string][]byte, error) {
	dir, err := os.MkdirTemp("", "genfuzzcorpus-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open[int64](dir)
	if err != nil {
		return nil, err
	}
	base := time.Unix(1_700_000_000, 0).UTC()
	for slot := 0; slot < 2; slot++ {
		from := base.Add(time.Duration(slot) * time.Second)
		if err := appendSeedSlot(st, slot, from); err != nil {
			return nil, err
		}
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	parts, err := filepath.Glob(filepath.Join(dir, "part-*.fps"))
	if err != nil {
		return nil, err
	}
	if len(parts) != 1 {
		return nil, fmt.Errorf("expected one partition file, got %v", parts)
	}
	seed, err := os.ReadFile(parts[0])
	if err != nil {
		return nil, err
	}
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0xff
	return map[string][]byte{
		"seed-valid":      seed,
		"seed-half":       seed[:len(seed)/2],
		"seed-bit-flip":   flipped,
		"seed-magic-only": []byte("FPS1"),
	}, nil
}

// appendSeedSlot fills one deterministic window sketch and persists it
// as the partition slot covering [from, from+1s).
func appendSeedSlot(st *store.Store[int64], slot int, from time.Time) error {
	sk, err := freq.New[int64](256, freq.WithSeed(uint64(5+slot)))
	if err != nil {
		return err
	}
	for i := int64(0); i < 200; i++ {
		if err := sk.Update(i%40, i%7+1); err != nil {
			return err
		}
	}
	return st.AppendSlot(freq.NewView(sk), from, from.Add(time.Second))
}

// frameCorpus seeds the binary-protocol fuzzer. Opcode and layout
// constants are spelled as raw bytes on purpose: the corpus documents
// the wire, not the implementation.
func frameCorpus() map[string][]byte {
	const (
		opPairs = 0x01
		opCmd   = 0x02
		opReply = 0x81
	)
	frame := func(op byte, payload []byte) []byte {
		b := make([]byte, 5+len(payload))
		b[0] = op
		binary.LittleEndian.PutUint32(b[1:], uint32(len(payload)))
		copy(b[5:], payload)
		return b
	}
	pairs := make([]byte, 32)
	binary.LittleEndian.PutUint64(pairs[0:], 7)
	binary.LittleEndian.PutUint64(pairs[8:], 100)
	binary.LittleEndian.PutUint64(pairs[16:], 8)
	binary.LittleEndian.PutUint64(pairs[24:], 50)
	hostile := []byte{opPairs, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(hostile[1:], 0xffff_ffff)
	return map[string][]byte{
		"seed-pairs":          frame(opPairs, pairs),
		"seed-pairs-ragged":   frame(opPairs, pairs[:13]),
		"seed-pairs-headless": {opPairs, 16, 0, 0, 0},
		"seed-hostile-length": hostile,
		"seed-unknown-opcode": frame(0x7f, nil),
		"seed-client-reply":   frame(opReply, []byte("OK 1\n")),
		"seed-cmd-est":        frame(opCmd, []byte("EST 42")),
		"seed-cmd-newline":    frame(opCmd, []byte("EST\nTOPK 1")),
		"seed-cmd-ub":         frame(opCmd, []byte("UB 2")),
		"seed-cmd-rehello":    frame(opCmd, []byte("HELLO BIN 2")),
	}
}

// tenantCorpus seeds the tenant-protocol fuzzer: v2 pairs frames (a
// 2-byte little-endian id length and the id precede the pairs; length 0
// scopes to the global summary) plus TENANT command frames. Like
// frameCorpus, the layout is spelled in raw bytes: the corpus documents
// the wire.
func tenantCorpus() map[string][]byte {
	const (
		opPairs = 0x01
		opCmd   = 0x02
	)
	frame := func(op byte, payload []byte) []byte {
		b := make([]byte, 5+len(payload))
		b[0] = op
		binary.LittleEndian.PutUint32(b[1:], uint32(len(payload)))
		copy(b[5:], payload)
		return b
	}
	v2pairs := func(id string, pairs []byte) []byte {
		payload := make([]byte, 2+len(id)+len(pairs))
		binary.LittleEndian.PutUint16(payload, uint16(len(id)))
		copy(payload[2:], id)
		copy(payload[2+len(id):], pairs)
		return frame(opPairs, payload)
	}
	pair := make([]byte, 16)
	binary.LittleEndian.PutUint64(pair, 7)
	binary.LittleEndian.PutUint64(pair[8:], 100)
	idLies := v2pairs("alice", pair)
	binary.LittleEndian.PutUint16(idLies[5:], 500)
	longID := make([]byte, 200)
	for i := range longID {
		longID[i] = 'x'
	}
	return map[string][]byte{
		"seed-v2-pairs":        v2pairs("alice", pair),
		"seed-v2-global":       v2pairs("", pair),
		"seed-v2-id-lies":      idLies,
		"seed-v2-id-toolong":   v2pairs(string(longID), pair),
		"seed-v2-id-invalid":   v2pairs("bad id\x01", pair),
		"seed-v2-ragged-pairs": v2pairs("alice", pair[:13]),
		"seed-v2-headerless":   {opPairs, 1, 0, 0, 0, 0x02},
		"seed-cmd-tenant-est":  frame(opCmd, []byte("TENANT alice EST 7")),
		"seed-cmd-tenant-ub":   frame(opCmd, []byte("TENANT alice UB 2")),
		"seed-cmd-evict":       frame(opCmd, []byte("TENANT alice EVICT")),
		"seed-cmd-rotate":      frame(opCmd, []byte("TENANT alice ROTATE")),
	}
}

// writeCorpus writes each entry in the `go test fuzz v1` single-[]byte
// encoding the three targets share.
func writeCorpus(dir string, entries map[string][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, data := range entries {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", filepath.Join(dir, name), len(data))
	}
	return nil
}
