// Command freqd runs the frequent-items summary as a network service: a
// line-protocol TCP daemon over the concurrent sharded sketch. Collectors
// stream weighted updates; operators query live estimates, heavy hitters,
// and serialized snapshots (see freq/server for the protocol). High-rate
// collectors negotiate the length-prefixed binary framing ("HELLO BIN 1")
// for zero-copy batch ingest; the text protocol stays available on every
// connection for debugging and netcat sessions.
//
// With -window the daemon additionally maintains a sliding window of
// per-interval sketches and rotates it on a wall-clock ticker
// (-rotate-every); the WIN command then scopes queries to the last w
// intervals — "top talkers over the last minute" with -window 60
// -rotate-every 1s.
//
// With -store-dir the window becomes durable: every retired interval is
// appended to a time-partitioned on-disk store (see freq/store), the
// RANGE command serves historical queries over it, and -retention /
// -retention-bytes bound its footprint.
//
// With -tenants the daemon serves many isolated summaries behind one
// port: the TENANT <id> command scope (and the HELLO BIN 2 framing's
// tenant-scoped batch frames) routes each update and query to a lazily
// created per-tenant sketch. -max-tenants bounds live occupancy (the
// idlest tenant is evicted to make room, its tables recycled through a
// warm pool), and -tenant-ttl evicts idle tenants on a sweep ticker.
// With -store-dir, eviction persists the tenant's summary under
// <store-dir>/tenants/, so TENANT RANGE queries see history across
// evictions and restarts.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// lets every in-flight command finish and flush its reply (bounded by
// -drain-timeout; a second signal hard-closes immediately), then flushes
// the live head interval to the store before exiting — so a restart
// loses nothing, and no client sees a half-served command. -idle-timeout
// and -io-timeout protect the daemon from dead and wedged peers.
//
// Usage:
//
//	freqd -listen :7070 -k 24576 -shards 8
//	freqd -listen :7070 -k 24576 -window 60 -rotate-every 1s
//	freqd -listen :7070 -window 60 -rotate-every 1m \
//	      -store-dir /var/lib/freqd -store-partition 1h -retention 720h
//
// Try it:
//
//	printf 'U 7 100\nU 7 50\nQ 7\nTOP 5\nWIN 5 TOPK 5\nSTATS\nQUIT\n' | nc localhost 7070
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/freq/server"
	"repro/freq/store"
	"repro/freq/tenant"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7070", "listen address")
		k           = flag.Int("k", 24576, "total counter budget (per interval when -window is set)")
		shards      = flag.Int("shards", 8, "shard count for concurrent ingest")
		window      = flag.Int("window", 0, "sliding-window interval count (0 = all-time summary only)")
		rotateEvery = flag.Duration("rotate-every", time.Second, "wall-clock width of one window interval (with -window)")

		storeDir    = flag.String("store-dir", "", "directory for the durable slot store (empty = no durability)")
		storePart   = flag.Duration("store-partition", time.Hour, "wall-clock width of one store partition file")
		storeCodec  = flag.String("store-codec", "lz", "store block compression: lz or none")
		storeSync   = flag.Bool("store-sync", false, "fsync each appended slot before acknowledging the rotation")
		retention   = flag.Duration("retention", 0, "drop stored history older than this (0 = keep forever)")
		retainBytes = flag.Int64("retention-bytes", 0, "drop oldest stored history beyond this many bytes (0 = no budget)")

		tenants    = flag.Bool("tenants", false, "enable the multi-tenant registry (TENANT commands, HELLO BIN 2 scoped batches)")
		maxTenants = flag.Int("max-tenants", 1024, "live tenant capacity: creating one more evicts the idlest (with -tenants)")
		tenantTTL  = flag.Duration("tenant-ttl", 0, "evict tenants idle for this long, persisting their history when -store-dir is set (0 = never)")

		idleTimeout  = flag.Duration("idle-timeout", 0, "drop connections idle between commands for this long (0 = never)")
		ioTimeout    = flag.Duration("io-timeout", 0, "per-command IO deadline: cut connections that stall mid-request or mid-reply (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "on SIGTERM/SIGINT, how long to let in-flight commands finish before hard-closing")
	)
	flag.Parse()
	if *window < 0 {
		fatal(fmt.Errorf("-window must be >= 0, got %d", *window))
	}
	if *window > 0 && *rotateEvery <= 0 {
		fatal(fmt.Errorf("-rotate-every must be positive, got %s", rotateEvery))
	}
	if *storeDir != "" && *window == 0 {
		fatal(fmt.Errorf("-store-dir requires -window: the store persists rotated window intervals"))
	}
	if !*tenants && (*tenantTTL != 0 || *maxTenants != 1024) {
		fatal(fmt.Errorf("-tenant-ttl and -max-tenants require -tenants"))
	}
	if *tenants && *maxTenants <= 0 {
		fatal(fmt.Errorf("-max-tenants must be positive, got %d", *maxTenants))
	}

	// Open the durable store first: it backs both the window's rotation
	// sink and the server's RANGE commands.
	var st *store.Store[int64]
	if *storeDir != "" {
		codec, err := store.CodecByName(*storeCodec)
		if err != nil {
			fatal(err)
		}
		st, err = store.Open[int64](*storeDir,
			store.WithPartitionDuration(*storePart),
			store.WithCodec(codec),
			store.WithRetentionAge(*retention),
			store.WithRetentionBytes(*retainBytes),
			store.WithSync(*storeSync),
		)
		if err != nil {
			fatal(err)
		}
	}

	cfg := server.Config{
		MaxCounters:     *k,
		Shards:          *shards,
		WindowIntervals: *window,
		IdleTimeout:     *idleTimeout,
		IOTimeout:       *ioTimeout,
	}
	if st != nil {
		cfg.Store = st
	}

	// The tenant registry shares the daemon's sketch geometry: each
	// tenant gets its own k-counter summary (and windowed twin when
	// -window is set). With -store-dir, evicted tenants' summaries are
	// persisted under <store-dir>/tenants/<id> so TENANT RANGE sees
	// history across evictions and restarts.
	var (
		mgr *tenant.Manager[int64]
		ts  *store.Tenants[int64]
	)
	if *tenants {
		var err error
		mgr, err = tenant.New[int64](tenant.Config{
			MaxCounters:     *k,
			Shards:          *shards,
			WindowIntervals: *window,
			MaxTenants:      *maxTenants,
			IdleTTL:         *tenantTTL,
		})
		if err != nil {
			fatal(err)
		}
		if st != nil {
			codec, err := store.CodecByName(*storeCodec)
			if err != nil {
				fatal(err)
			}
			ts, err = store.OpenTenants[int64](filepath.Join(*storeDir, "tenants"),
				store.WithPartitionDuration(*storePart),
				store.WithCodec(codec),
				store.WithRetentionAge(*retention),
				store.WithRetentionBytes(*retainBytes),
				store.WithSync(*storeSync),
			)
			if err != nil {
				fatal(err)
			}
			mgr.SetSink(ts)
			cfg.TenantStore = ts
		}
		cfg.Tenants = mgr
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "freqd: listening on %s (k=%d, shards=%d, %d KB summary budget)\n",
		ln.Addr(), *k, *shards, 24**k/1024)

	// The rotation loop is the daemon's window driver: one wall-clock-
	// aligned timer, one Rotate per interval boundary, stopped with the
	// listener. Manual ROTATE commands compose with it (both advance the
	// same ring).
	stopRotating := func() {}
	if *window > 0 {
		fmt.Fprintf(os.Stderr, "freqd: sliding window of %d x %s intervals\n", *window, rotateEvery)
		if st != nil {
			s := st.Stats()
			fmt.Fprintf(os.Stderr, "freqd: durable store at %s (%d partitions, %d blocks, %d bytes)\n",
				*storeDir, s.Partitions, s.Blocks, s.Bytes)
			srv.Windowed().SetRotationSink(st, time.Now())
		}
		stopRotating = srv.Windowed().StartRotating(*rotateEvery)
	}

	// Tenant maintenance tickers: the idle sweep walks the registry a few
	// times per TTL (bounded to [1s, 1m]), and the rotation ticker
	// advances every live tenant's window in lockstep with the global one.
	stopTenantTickers := func() {}
	if mgr != nil {
		fmt.Fprintf(os.Stderr, "freqd: multi-tenant registry (max %d tenants, idle ttl %s)\n", *maxTenants, tenantTTL)
		stopEvict := func() {}
		if *tenantTTL > 0 {
			sweep := *tenantTTL / 4
			sweep = max(sweep, time.Second)
			sweep = min(sweep, time.Minute)
			stopEvict = mgr.StartEvicting(sweep)
		}
		stopRotate := func() {}
		if *window > 0 {
			stopRotate = mgr.StartRotating(*rotateEvery)
		}
		stopTenantTickers = func() {
			stopEvict()
			stopRotate()
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	sigSeen := make(chan struct{})
	drained := make(chan struct{})
	go func() {
		<-sig
		close(sigSeen)
		fmt.Fprintf(os.Stderr, "freqd: draining (up to %s for in-flight commands)\n", *drainTimeout)
		stopRotating()
		stopTenantTickers()
		// Graceful drain: stop accepting, let every command in flight
		// finish and flush its reply, hard-close stragglers at the
		// deadline. A second signal cuts the drain short.
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			<-sig
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "freqd: drain cut short:", err)
		}
		close(drained)
	}()

	serveErr := srv.Serve(ln)
	select {
	case <-sigSeen:
		// Signal-initiated stop: Serve returned because Shutdown closed
		// the listener. Wait for the drain — every handler must have
		// exited (and flushed its buffered ingest) before the store
		// flush below reads the window's final state.
		<-drained
	default:
		if serveErr != nil && serveErr != net.ErrClosed {
			// Closed listeners surface wrapped errors; a clean shutdown ends here.
			if ne, ok := serveErr.(*net.OpError); !ok || ne.Err.Error() != "use of closed network connection" {
				fatal(serveErr)
			}
		}
	}

	// Every handler has returned, so the registries hold their final
	// state. Drain every live tenant's head slot through the sink before
	// the stores close — a restart loses no tenant's history.
	if mgr != nil {
		mts := mgr.Stats()
		if ts != nil {
			if err := mgr.Drain(time.Now()); err != nil {
				fmt.Fprintln(os.Stderr, "freqd: tenant drain failed:", err)
			}
			if err := ts.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "freqd: tenant store close failed:", err)
			}
		}
		fmt.Fprintf(os.Stderr, "freqd: %d live tenants drained (%d created, %d evicted over the run)\n",
			mts.Active, mts.Created, mts.Evictions)
	}

	// Every handler has returned, so the window holds its final state.
	// Flush the live head interval into the store and close it — the
	// restart picks up a complete history.
	if st != nil {
		srv.Windowed().RotateAt(time.Now())
		if err := srv.Windowed().SinkErr(); err != nil {
			fmt.Fprintln(os.Stderr, "freqd: store append failed:", err)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "freqd: store close failed:", err)
		}
	}
	updates, queries := srv.Counters()
	fmt.Fprintf(os.Stderr, "freqd: served %d updates, %d queries\n", updates, queries)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqd:", err)
	os.Exit(1)
}
