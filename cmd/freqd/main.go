// Command freqd runs the frequent-items summary as a network service: a
// line-protocol TCP daemon over the concurrent sharded sketch. Collectors
// stream weighted updates; operators query live estimates, heavy hitters,
// and serialized snapshots (see freq/server for the protocol).
//
// Usage:
//
//	freqd -listen :7070 -k 24576 -shards 8
//
// Try it:
//
//	printf 'U 7 100\nU 7 50\nQ 7\nTOP 5\nSTATS\nQUIT\n' | nc localhost 7070
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/freq/server"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7070", "listen address")
		k      = flag.Int("k", 24576, "total counter budget")
		shards = flag.Int("shards", 8, "shard count for concurrent ingest")
	)
	flag.Parse()

	srv, err := server.New(server.Config{MaxCounters: *k, Shards: *shards})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "freqd: listening on %s (k=%d, shards=%d, %d KB summary budget)\n",
		ln.Addr(), *k, *shards, 24**k/1024)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "freqd: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil && err != net.ErrClosed {
		// Closed listeners surface wrapped errors; a clean shutdown ends here.
		if ne, ok := err.(*net.OpError); !ok || ne.Err.Error() != "use of closed network connection" {
			fatal(err)
		}
	}
	updates, queries := srv.Counters()
	fmt.Fprintf(os.Stderr, "freqd: served %d updates, %d queries\n", updates, queries)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqd:", err)
	os.Exit(1)
}
