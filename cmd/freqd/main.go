// Command freqd runs the frequent-items summary as a network service: a
// line-protocol TCP daemon over the concurrent sharded sketch. Collectors
// stream weighted updates; operators query live estimates, heavy hitters,
// and serialized snapshots (see freq/server for the protocol).
//
// With -window the daemon additionally maintains a sliding window of
// per-interval sketches and rotates it on a wall-clock ticker
// (-rotate-every); the WIN command then scopes queries to the last w
// intervals — "top talkers over the last minute" with -window 60
// -rotate-every 1s.
//
// Usage:
//
//	freqd -listen :7070 -k 24576 -shards 8
//	freqd -listen :7070 -k 24576 -window 60 -rotate-every 1s
//
// Try it:
//
//	printf 'U 7 100\nU 7 50\nQ 7\nTOP 5\nWIN 5 TOPK 5\nSTATS\nQUIT\n' | nc localhost 7070
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/freq/server"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7070", "listen address")
		k           = flag.Int("k", 24576, "total counter budget (per interval when -window is set)")
		shards      = flag.Int("shards", 8, "shard count for concurrent ingest")
		window      = flag.Int("window", 0, "sliding-window interval count (0 = all-time summary only)")
		rotateEvery = flag.Duration("rotate-every", time.Second, "wall-clock width of one window interval (with -window)")
	)
	flag.Parse()
	if *window < 0 {
		fatal(fmt.Errorf("-window must be >= 0, got %d", *window))
	}
	if *window > 0 && *rotateEvery <= 0 {
		fatal(fmt.Errorf("-rotate-every must be positive, got %s", rotateEvery))
	}

	srv, err := server.New(server.Config{MaxCounters: *k, Shards: *shards, WindowIntervals: *window})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "freqd: listening on %s (k=%d, shards=%d, %d KB summary budget)\n",
		ln.Addr(), *k, *shards, 24**k/1024)

	// The rotation loop is the daemon's window driver: one ticker, one
	// Rotate per interval boundary, stopped with the listener. Manual
	// ROTATE commands compose with it (both advance the same ring).
	stopRotating := func() {}
	if *window > 0 {
		fmt.Fprintf(os.Stderr, "freqd: sliding window of %d x %s intervals\n", *window, rotateEvery)
		stopRotating = srv.Windowed().StartRotating(*rotateEvery)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "freqd: shutting down")
		stopRotating()
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil && err != net.ErrClosed {
		// Closed listeners surface wrapped errors; a clean shutdown ends here.
		if ne, ok := err.(*net.OpError); !ok || ne.Err.Error() != "use of closed network connection" {
			fatal(err)
		}
	}
	updates, queries := srv.Counters()
	fmt.Fprintf(os.Stderr, "freqd: served %d updates, %d queries\n", updates, queries)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqd:", err)
	os.Exit(1)
}
