// Command freqd runs the frequent-items summary as a network service: a
// line-protocol TCP daemon over the concurrent sharded sketch. Collectors
// stream weighted updates; operators query live estimates, heavy hitters,
// and serialized snapshots (see freq/server for the protocol). High-rate
// collectors negotiate the length-prefixed binary framing ("HELLO BIN 1")
// for zero-copy batch ingest; the text protocol stays available on every
// connection for debugging and netcat sessions.
//
// With -window the daemon additionally maintains a sliding window of
// per-interval sketches and rotates it on a wall-clock ticker
// (-rotate-every); the WIN command then scopes queries to the last w
// intervals — "top talkers over the last minute" with -window 60
// -rotate-every 1s.
//
// With -store-dir the window becomes durable: every retired interval is
// appended to a time-partitioned on-disk store (see freq/store), the
// RANGE command serves historical queries over it, and -retention /
// -retention-bytes bound its footprint. On SIGINT/SIGTERM the daemon
// flushes the live head interval to the store before exiting, so a
// restart loses nothing but the partial interval in flight at the kill
// — and not even that.
//
// Usage:
//
//	freqd -listen :7070 -k 24576 -shards 8
//	freqd -listen :7070 -k 24576 -window 60 -rotate-every 1s
//	freqd -listen :7070 -window 60 -rotate-every 1m \
//	      -store-dir /var/lib/freqd -store-partition 1h -retention 720h
//
// Try it:
//
//	printf 'U 7 100\nU 7 50\nQ 7\nTOP 5\nWIN 5 TOPK 5\nSTATS\nQUIT\n' | nc localhost 7070
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/freq/server"
	"repro/freq/store"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7070", "listen address")
		k           = flag.Int("k", 24576, "total counter budget (per interval when -window is set)")
		shards      = flag.Int("shards", 8, "shard count for concurrent ingest")
		window      = flag.Int("window", 0, "sliding-window interval count (0 = all-time summary only)")
		rotateEvery = flag.Duration("rotate-every", time.Second, "wall-clock width of one window interval (with -window)")

		storeDir    = flag.String("store-dir", "", "directory for the durable slot store (empty = no durability)")
		storePart   = flag.Duration("store-partition", time.Hour, "wall-clock width of one store partition file")
		storeCodec  = flag.String("store-codec", "lz", "store block compression: lz or none")
		storeSync   = flag.Bool("store-sync", false, "fsync each appended slot before acknowledging the rotation")
		retention   = flag.Duration("retention", 0, "drop stored history older than this (0 = keep forever)")
		retainBytes = flag.Int64("retention-bytes", 0, "drop oldest stored history beyond this many bytes (0 = no budget)")
	)
	flag.Parse()
	if *window < 0 {
		fatal(fmt.Errorf("-window must be >= 0, got %d", *window))
	}
	if *window > 0 && *rotateEvery <= 0 {
		fatal(fmt.Errorf("-rotate-every must be positive, got %s", rotateEvery))
	}
	if *storeDir != "" && *window == 0 {
		fatal(fmt.Errorf("-store-dir requires -window: the store persists rotated window intervals"))
	}

	// Open the durable store first: it backs both the window's rotation
	// sink and the server's RANGE commands.
	var st *store.Store[int64]
	if *storeDir != "" {
		codec, err := store.CodecByName(*storeCodec)
		if err != nil {
			fatal(err)
		}
		st, err = store.Open[int64](*storeDir,
			store.WithPartitionDuration(*storePart),
			store.WithCodec(codec),
			store.WithRetentionAge(*retention),
			store.WithRetentionBytes(*retainBytes),
			store.WithSync(*storeSync),
		)
		if err != nil {
			fatal(err)
		}
	}

	cfg := server.Config{MaxCounters: *k, Shards: *shards, WindowIntervals: *window}
	if st != nil {
		cfg.Store = st
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "freqd: listening on %s (k=%d, shards=%d, %d KB summary budget)\n",
		ln.Addr(), *k, *shards, 24**k/1024)

	// The rotation loop is the daemon's window driver: one wall-clock-
	// aligned timer, one Rotate per interval boundary, stopped with the
	// listener. Manual ROTATE commands compose with it (both advance the
	// same ring).
	stopRotating := func() {}
	if *window > 0 {
		fmt.Fprintf(os.Stderr, "freqd: sliding window of %d x %s intervals\n", *window, rotateEvery)
		if st != nil {
			s := st.Stats()
			fmt.Fprintf(os.Stderr, "freqd: durable store at %s (%d partitions, %d blocks, %d bytes)\n",
				*storeDir, s.Partitions, s.Blocks, s.Bytes)
			srv.Windowed().SetRotationSink(st, time.Now())
		}
		stopRotating = srv.Windowed().StartRotating(*rotateEvery)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "freqd: shutting down")
		stopRotating()
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil && err != net.ErrClosed {
		// Closed listeners surface wrapped errors; a clean shutdown ends here.
		if ne, ok := err.(*net.OpError); !ok || ne.Err.Error() != "use of closed network connection" {
			fatal(err)
		}
	}

	// Graceful drain: every handler has returned (srv.Close waited), so
	// the window holds its final state. Flush the live head interval into
	// the store and close it — the restart picks up a complete history.
	if st != nil {
		srv.Windowed().RotateAt(time.Now())
		if err := srv.Windowed().SinkErr(); err != nil {
			fmt.Fprintln(os.Stderr, "freqd: store append failed:", err)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "freqd: store close failed:", err)
		}
	}
	updates, queries := srv.Counters()
	fmt.Fprintf(os.Stderr, "freqd: served %d updates, %d queries\n", updates, queries)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freqd:", err)
	os.Exit(1)
}
